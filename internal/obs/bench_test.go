package obs

import (
	"testing"
	"time"
)

// The disabled (nil-instrument) fast path must cost a nil check and
// nothing else — no allocations, no clock reads. These benchmarks and the
// AllocsPerRun regression test pin that contract; the enabled-path
// benchmarks document the price of turning metrics on (BENCH_3.json).

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "1", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-6)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "s", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "s", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1e-5)
		}
	})
}

func BenchmarkSpanNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(h)
		sp.End()
	}
}

func BenchmarkSpan(b *testing.B) {
	h := NewRegistry().Histogram("span_seconds", "s", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(h)
		sp.End()
	}
}

// TestInstrumentsDoNotAllocate is the allocation regression gate for the
// instruments themselves: recording into live counters, gauges,
// histograms and spans must be allocation-free after construction.
func TestInstrumentsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "1", "")
	g := r.Gauge("alloc_g", "1", "")
	h := r.Histogram("alloc_h_seconds", "s", "", nil)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2.5)
		h.Observe(3e-6)
		sp := StartSpan(h)
		sp.End()
	}); allocs != 0 {
		t.Fatalf("live instruments allocated %v times per op, want 0", allocs)
	}
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nh.Observe(1)
		sp := StartSpan(nh)
		sp.End()
	}); allocs != 0 {
		t.Fatalf("nil instruments allocated %v times per op, want 0", allocs)
	}
	_ = time.Now() // keep time imported for future span benchmarks
}
