package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink consumes periodic registry snapshots. Implementations decide what
// to do with them: log a progress line, push to a collector, archive to
// disk. Consume is called from the Publisher's goroutine; implementations
// must be safe for that (they never run concurrently with themselves).
type Sink interface {
	Consume(s *Snapshot)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(s *Snapshot)

// Consume calls f(s).
func (f SinkFunc) Consume(s *Snapshot) { f(s) }

// Publisher snapshots a registry on a fixed interval and hands the
// snapshot to every sink — the engine behind the progress logger and any
// push-style exporter. Start it with NewPublisher, stop it with Stop
// (idempotent); Stop delivers one final snapshot so short runs still
// produce at least one report.
type Publisher struct {
	reg      *Registry
	sinks    []Sink
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewPublisher starts publishing snapshots of reg every interval to the
// given sinks. A nil registry, non-positive interval or empty sink list
// yields an inert publisher whose Stop is still safe to call.
func NewPublisher(reg *Registry, interval time.Duration, sinks ...Sink) *Publisher {
	p := &Publisher{reg: reg, sinks: sinks, stop: make(chan struct{}), done: make(chan struct{})}
	if reg == nil || interval <= 0 || len(sinks) == 0 {
		close(p.done)
		return p
	}
	go func() {
		defer close(p.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				p.publish()
			case <-p.stop:
				p.publish() // final snapshot on shutdown
				return
			}
		}
	}()
	return p
}

func (p *Publisher) publish() {
	s := p.reg.Snapshot()
	for _, sink := range p.sinks {
		sink.Consume(s)
	}
}

// Stop halts the publishing goroutine after one final snapshot and waits
// for it to exit. Safe to call multiple times.
func (p *Publisher) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// LogSink writes one compact progress line per snapshot to W — the
// replacement for ad-hoc per-run progress printers. Keys selects the
// metrics to report in order; empty Keys reports every counter and gauge.
// Histograms named in Keys report count, p50 and p99. Metrics that have
// not moved since the previous line are still printed: a stalled run
// showing the same numbers is itself a signal.
type LogSink struct {
	W io.Writer
	// Prefix starts every line (e.g. "relsim: "); keep it short.
	Prefix string
	// Keys are the metric names to report, in order. Empty means all
	// counters and gauges.
	Keys []string
}

// Consume writes the progress line.
func (l *LogSink) Consume(s *Snapshot) {
	if l.W == nil || s == nil {
		return
	}
	parts := make([]string, 0, 8)
	if len(l.Keys) == 0 {
		for _, c := range s.Counters {
			parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
		}
		for _, g := range s.Gauges {
			parts = append(parts, fmt.Sprintf("%s=%g", g.Name, g.Value))
		}
	} else {
		for _, k := range l.Keys {
			if v, ok := s.Counter(k); ok {
				parts = append(parts, fmt.Sprintf("%s=%d", k, v))
				continue
			}
			if h := s.Histogram(k); h != nil {
				parts = append(parts, fmt.Sprintf("%s{count=%d p50=%.3g p99=%.3g}", k, h.Count, h.P50, h.P99))
				continue
			}
			for _, g := range s.Gauges {
				if g.Name == k {
					parts = append(parts, fmt.Sprintf("%s=%g", k, g.Value))
					break
				}
			}
		}
	}
	if len(parts) == 0 {
		return
	}
	fmt.Fprintf(l.W, "%s%s\n", l.Prefix, joinSpace(parts))
}

func joinSpace(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}
