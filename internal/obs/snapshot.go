package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// CounterSnapshot is the exported state of one counter.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Unit  string `json:"unit,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is the exported state of one gauge.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is the exported state of one histogram: summary
// statistics, headline quantiles, and the raw cumulative-free bucket
// counts (Buckets[i] observations fell at or below Bounds[i];
// Buckets[len(Bounds)] is the overflow bucket).
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Unit    string    `json:"unit,omitempty"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	P50     float64   `json:"p50"`
	P90     float64   `json:"p90"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Quantile answers quantile queries from the snapshot's buckets, matching
// the live Histogram.Quantile estimate at snapshot time.
func (h *HistogramSnapshot) Quantile(p float64) float64 {
	return bucketQuantile(p, h.Bounds, h.Buckets, h.Count, h.Min, h.Max)
}

// Snapshot is a point-in-time export of a whole registry, ordered by
// metric name. It marshals directly to JSON — core.Result.Telemetry
// embeds one so a reliability run's answer carries its own execution
// metrics.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the snapshot value of the named counter (0, false when
// absent).
func (s *Snapshot) Counter(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram snapshot, or nil.
func (s *Snapshot) Histogram(name string) *HistogramSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Snapshot exports the registry's current state. On a nil registry it
// returns nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for _, name := range r.sortedNames() {
		r.mu.Lock()
		c, g, h := r.counts[name], r.gauges[name], r.hists[name]
		r.mu.Unlock()
		switch {
		case c != nil:
			s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Unit: c.unit, Value: c.Value()})
		case g != nil:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Unit: g.unit, Value: g.Value()})
		case h != nil:
			buckets, count, sum, min, max := h.merged()
			hs := HistogramSnapshot{
				Name: h.name, Unit: h.unit,
				Count: count, Sum: sum,
				Bounds: append([]float64(nil), h.bounds...), Buckets: buckets,
			}
			if count > 0 {
				hs.Min, hs.Max = min, max
				hs.P50 = bucketQuantile(0.50, h.bounds, buckets, count, min, max)
				hs.P90 = bucketQuantile(0.90, h.bounds, buckets, count, min, max)
				hs.P99 = bucketQuantile(0.99, h.bounds, buckets, count, min, max)
			}
			s.Histograms = append(s.Histograms, hs)
		}
	}
	return s
}

// MarshalJSONIndent renders the snapshot as indented JSON.
func (s *Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count` — directly scrapeable by any Prometheus-compatible collector.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, name := range r.sortedNames() {
		r.mu.Lock()
		c, g, h := r.counts[name], r.gauges[name], r.hists[name]
		r.mu.Unlock()
		switch {
		case c != nil:
			if err := promHeader(w, c.name, c.help, c.unit, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value()); err != nil {
				return err
			}
		case g != nil:
			if err := promHeader(w, g.name, g.help, g.unit, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", g.name, promFloat(g.Value())); err != nil {
				return err
			}
		case h != nil:
			if err := promHeader(w, h.name, h.help, h.unit, "histogram"); err != nil {
				return err
			}
			buckets, count, sum, _, _ := h.merged()
			var cum int64
			for i, bound := range h.bounds {
				cum += buckets[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, promFloat(bound), cum); err != nil {
					return err
				}
			}
			cum += buckets[len(h.bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.name, promFloat(sum), h.name, count); err != nil {
				return err
			}
		}
	}
	return nil
}

func promHeader(w io.Writer, name, help, unit, kind string) error {
	if help != "" {
		if unit != "" {
			help += " [" + unit + "]"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

// promFloat formats a float the way the Prometheus text format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
