package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// histStripes is the number of independent shards a histogram spreads its
// state over. Parallel Monte-Carlo workers recording trial latencies would
// otherwise serialize on one set of cache lines; eight stripes keep the
// contention negligible at the worker counts Go schedules (GOMAXPROCS of
// commodity machines) while keeping merges cheap.
const histStripes = 8

// stripe is one shard of histogram state. All fields are atomics so
// recording never takes a lock; sum/min/max are float64 bit patterns
// updated by CAS.
type stripe struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf until the first observation
	maxBits atomic.Uint64 // -Inf until the first observation
	buckets []atomic.Int64
	_       [6]uint64 // pad stripes apart (coarse false-sharing guard)
}

// Histogram records a distribution of float64 observations into fixed,
// strictly increasing bucket upper bounds, plus an overflow bucket. It is
// lock-striped: Observe is wait-free apart from bounded CAS retries and
// performs no allocation. Quantiles are estimated from the merged bucket
// counts with linear interpolation inside the winning bucket. A nil
// *Histogram is a valid no-op instrument.
type Histogram struct {
	name, unit, help string
	bounds           []float64
	stripes          [histStripes]stripe
	rr               atomic.Uint64 // round-robin stripe cursor
}

// TimeBuckets returns the default latency bounds in seconds: a 1-2-5
// ladder from 100 ns to 100 s. Solver factor/solve calls land near the
// bottom, whole Monte-Carlo runs near the top.
func TimeBuckets() []float64 {
	out := make([]float64, 0, 28)
	for _, dec := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10} {
		out = append(out, dec, 2*dec, 5*dec)
	}
	return append(out, 100)
}

func newHistogram(name, unit, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = TimeBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{name: name, unit: unit, help: help, bounds: append([]float64(nil), bounds...)}
	for s := range h.stripes {
		h.stripes[s].buckets = make([]atomic.Int64, len(bounds)+1)
		h.stripes[s].minBits.Store(math.Float64bits(math.Inf(1)))
		h.stripes[s].maxBits.Store(math.Float64bits(math.Inf(-1)))
	}
	return h
}

// Observe records one value. NaN observations are dropped — they carry no
// ordering information and would poison the merged min/max.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	s := &h.stripes[h.rr.Add(1)%histStripes]
	s.count.Add(1)
	casAdd(&s.sumBits, v)
	casMin(&s.minBits, v)
	casMax(&s.maxBits, v)
	s.buckets[h.bucketIdx(v)].Add(1)
}

// bucketIdx finds the first bound >= v by binary search; len(bounds) is
// the overflow bucket.
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for s := range h.stripes {
		n += h.stripes[s].count.Load()
	}
	return n
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	sum := 0.0
	for s := range h.stripes {
		sum += math.Float64frombits(h.stripes[s].sumBits.Load())
	}
	return sum
}

// Name returns the metric name ("" on nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// merged collapses the stripes into one bucket array plus summary stats.
func (h *Histogram) merged() (buckets []int64, count int64, sum, min, max float64) {
	buckets = make([]int64, len(h.bounds)+1)
	min, max = math.Inf(1), math.Inf(-1)
	for s := range h.stripes {
		st := &h.stripes[s]
		count += st.count.Load()
		sum += math.Float64frombits(st.sumBits.Load())
		if m := math.Float64frombits(st.minBits.Load()); m < min {
			min = m
		}
		if m := math.Float64frombits(st.maxBits.Load()); m > max {
			max = m
		}
		for b := range st.buckets {
			buckets[b] += st.buckets[b].Load()
		}
	}
	return
}

// Quantile estimates the p-quantile (0 <= p <= 1) of everything observed
// so far: it walks the merged cumulative bucket counts to the bucket
// containing rank p·count and interpolates linearly between the bucket's
// edges (clamped to the observed min/max, which makes small histograms and
// the extreme quantiles exact at the endpoints). It returns NaN when the
// histogram is empty or nil.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	buckets, count, _, min, max := h.merged()
	return bucketQuantile(p, h.bounds, buckets, count, min, max)
}

// bucketQuantile is the pure computation behind Histogram.Quantile, shared
// with HistogramSnapshot so that exported snapshots answer the same
// quantile queries as the live instrument.
func bucketQuantile(p float64, bounds []float64, buckets []int64, count int64, min, max float64) float64 {
	if count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return min
	}
	if p >= 1 {
		return max
	}
	rank := p * float64(count)
	var cum int64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		// The rank falls inside bucket i: interpolate between its edges.
		lo := min
		if i > 0 && bounds[i-1] > lo {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if hi <= lo {
			return lo
		}
		frac := (rank - float64(prev)) / float64(n)
		return lo + frac*(hi-lo)
	}
	return max
}

// Span is an in-flight timing measurement: StartSpan captures the clock,
// End records the elapsed seconds into the histogram. The zero Span (and
// any span started on a nil histogram) is inert, so callers need no
// conditional around End. Span is a value type — starting and ending a
// span never allocates.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan begins timing against h. On a nil histogram it returns an
// inert span without reading the clock — the disabled fast path.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed time. Safe to call on the zero Span; calling End
// twice records twice (don't).
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0).Seconds())
}

// casAdd atomically adds v to the float64 stored in bits.
func casAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// casMin lowers the stored float64 to v when v is smaller.
func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casMax raises the stored float64 to v when v is larger.
func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
