// Package obs is the observability layer of the simulator: a
// dependency-free metrics and tracing subsystem that turns the paper's
// Section 5.2 resilience argument — a system stays inside spec only while
// it is continuously monitored — back onto the simulator itself. The hot
// engines (linalg factor/solve, circuit Newton iteration, variation
// Monte-Carlo trials, aging mechanism steps, emc sweeps) publish counters,
// gauges and latency histograms into a Registry; consumers read them as a
// JSON Snapshot, as Prometheus text over HTTP, or through a periodic
// progress logger built on the Sink interface.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every instrument is nil-receiver safe, so
//     an un-wired package pays one nil check per event — no allocations,
//     no atomics, no time.Now() calls. The solver hot path keeps its
//     0-alloc guarantee with metrics off (and on: instruments never
//     allocate after construction).
//  2. Safe under heavy concurrency. Counters and gauges are single
//     atomics; histograms stripe their state to spread cache-line
//     contention across parallel Monte-Carlo workers.
//  3. Deterministic simulation results. Instruments observe execution,
//     never influence it: no instrument feeds back into any solve.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// unusable; obtain counters from a Registry. A nil *Counter is a valid
// no-op instrument — the disabled fast path.
type Counter struct {
	name, unit, help string
	v                atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n < 0 is a programming error; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the metric name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic float64 instrument for last-observed values (queue
// depths, knob settings, progress fractions). Nil gauges are no-ops.
type Gauge struct {
	name, unit, help string
	bits             atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the metric name ("" on nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry owns a namespace of instruments. Get-or-create accessors are
// idempotent: asking twice for the same name returns the same instrument,
// so independent packages can share one registry without coordination.
// A nil *Registry hands out nil instruments, which makes wiring code
// unconditional: pkg.SetMetrics(nil) disables instrumentation.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order for stable snapshots
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Unit and
// help are recorded on creation and ignored afterwards. Registering the
// same name as a different instrument type panics — that is a wiring bug.
func (r *Registry) Counter(name, unit, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c := &Counter{name: name, unit: unit, help: help}
	r.counts[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g := &Gauge{name: name, unit: unit, help: help}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds must be strictly increasing; nil
// selects TimeBuckets, the right default for latency-in-seconds metrics).
func (r *Registry) Histogram(name, unit, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	h := newHistogram(name, unit, help, bounds)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

func (r *Registry) checkFreeLocked(name, kind string) {
	if _, ok := r.counts[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, requested as %s", name, kind))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, requested as %s", name, kind))
	}
}

// names returns all metric names in registration order.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// sortedNames returns all metric names sorted — the order Prometheus
// exposition and JSON snapshots use.
func (r *Registry) sortedNames() []string {
	out := r.names()
	sort.Strings(out)
	return out
}
