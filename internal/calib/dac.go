// Package calib implements the post-fabrication calibration study of the
// paper's Section 5.1: a segmented current-steering DAC whose unary MSB
// sources carry Pelgrom-sampled mismatch errors, the Switching-Sequence
// Post-Adjustment (SSPA) calibration that re-orders those sources at run
// time, INL/DNL extraction, and the area-vs-accuracy trade model behind the
// Fig. 5 claim that a calibrated DAC needs only ~6 % of the analog area of
// an intrinsically accurate one.
package calib

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// DACConfig describes a segmented current-steering DAC: the UnaryBits MSBs
// drive 2^UnaryBits − 1 equal sources of weight 2^BinaryBits LSB each; the
// BinaryBits LSBs drive binary-weighted sources.
type DACConfig struct {
	UnaryBits  int
	BinaryBits int
	// SigmaUnit is the relative standard deviation of a single 1-LSB unit
	// current source, σ(I)/I. A source of weight w is built from w units,
	// so its absolute error is σ(w) = SigmaUnit·√w LSB.
	SigmaUnit float64
}

// Bits returns the total resolution.
func (c DACConfig) Bits() int { return c.UnaryBits + c.BinaryBits }

// Codes returns the number of input codes, 2^Bits.
func (c DACConfig) Codes() int { return 1 << c.Bits() }

// Validate checks the configuration.
func (c DACConfig) Validate() error {
	switch {
	case c.UnaryBits < 1 || c.BinaryBits < 0:
		return fmt.Errorf("calib: bad segmentation %d+%d", c.UnaryBits, c.BinaryBits)
	case c.Bits() > 16:
		return fmt.Errorf("calib: %d bits is beyond this model", c.Bits())
	case c.SigmaUnit < 0:
		return fmt.Errorf("calib: negative SigmaUnit %g", c.SigmaUnit)
	}
	return nil
}

// Paper14Bit returns the configuration of the Chen/Gielen JSSC DAC the
// paper shows in Fig. 5: 14 bits segmented 6 unary + 8 binary.
func Paper14Bit(sigmaUnit float64) DACConfig {
	return DACConfig{UnaryBits: 6, BinaryBits: 8, SigmaUnit: sigmaUnit}
}

// DAC is one fabricated instance: nominal weights plus sampled errors.
type DAC struct {
	Config DACConfig
	// unaryErr[i] is the absolute error (in LSB) of unary source i.
	unaryErr []float64
	// binErr[b] is the absolute error (in LSB) of binary source b (weight
	// 2^b).
	binErr []float64
	// seq[k] is the index of the unary source switched on k-th; SSPA
	// permutes this.
	seq []int
}

// NewDAC fabricates a DAC instance, sampling all source errors from the
// configured mismatch level.
func NewDAC(cfg DACConfig, rng *mathx.RNG) (*DAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nUnary := (1 << cfg.UnaryBits) - 1
	unaryWeight := float64(int(1) << cfg.BinaryBits)
	d := &DAC{
		Config:   cfg,
		unaryErr: make([]float64, nUnary),
		binErr:   make([]float64, cfg.BinaryBits),
		seq:      make([]int, nUnary),
	}
	for i := range d.unaryErr {
		d.unaryErr[i] = cfg.SigmaUnit * math.Sqrt(unaryWeight) * rng.Norm()
		d.seq[i] = i
	}
	for b := range d.binErr {
		w := float64(int(1) << b)
		d.binErr[b] = cfg.SigmaUnit * math.Sqrt(w) * rng.Norm()
	}
	return d, nil
}

// NewDACFromErrors builds a DAC with externally supplied standard-normal
// deviates for each source (unary first, then binary LSB→MSB), scaled by
// the configured SigmaUnit and the √weight law. This is the hook for
// stratified (Latin-hypercube) sampling, which needs control over the
// underlying normals.
func NewDACFromErrors(cfg DACConfig, unaryZ, binZ []float64) (*DAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nUnary := (1 << cfg.UnaryBits) - 1
	if len(unaryZ) != nUnary || len(binZ) != cfg.BinaryBits {
		return nil, fmt.Errorf("calib: need %d unary and %d binary deviates, got %d and %d",
			nUnary, cfg.BinaryBits, len(unaryZ), len(binZ))
	}
	unaryWeight := float64(int(1) << cfg.BinaryBits)
	d := &DAC{
		Config:   cfg,
		unaryErr: make([]float64, nUnary),
		binErr:   make([]float64, cfg.BinaryBits),
		seq:      make([]int, nUnary),
	}
	for i, z := range unaryZ {
		d.unaryErr[i] = cfg.SigmaUnit * math.Sqrt(unaryWeight) * z
		d.seq[i] = i
	}
	for b, z := range binZ {
		w := float64(int(1) << b)
		d.binErr[b] = cfg.SigmaUnit * math.Sqrt(w) * z
	}
	return d, nil
}

// ResetSequence restores the thermometer (as-drawn) switching order.
func (d *DAC) ResetSequence() {
	for i := range d.seq {
		d.seq[i] = i
	}
}

// Sequence returns a copy of the current switching sequence.
func (d *DAC) Sequence() []int { return append([]int(nil), d.seq...) }

// SetSequence installs an explicit switching sequence (must be a
// permutation of the unary indices).
func (d *DAC) SetSequence(seq []int) error {
	if len(seq) != len(d.seq) {
		return fmt.Errorf("calib: sequence length %d, want %d", len(seq), len(d.seq))
	}
	seen := make([]bool, len(seq))
	for _, s := range seq {
		if s < 0 || s >= len(seq) || seen[s] {
			return fmt.Errorf("calib: sequence is not a permutation")
		}
		seen[s] = true
	}
	copy(d.seq, seq)
	return nil
}

// Output returns the analog output for an input code, in LSB units,
// including all source errors.
func (d *DAC) Output(code int) float64 {
	if code < 0 || code >= d.Config.Codes() {
		panic(fmt.Sprintf("calib: code %d out of range", code))
	}
	binMask := (1 << d.Config.BinaryBits) - 1
	unaryCount := code >> d.Config.BinaryBits
	binCode := code & binMask

	out := 0.0
	unaryWeight := float64(int(1) << d.Config.BinaryBits)
	for k := 0; k < unaryCount; k++ {
		out += unaryWeight + d.unaryErr[d.seq[k]]
	}
	for b := 0; b < d.Config.BinaryBits; b++ {
		if binCode&(1<<b) != 0 {
			out += float64(int(1)<<b) + d.binErr[b]
		}
	}
	return out
}

// TransferCurve returns Output(code) for every code.
func (d *DAC) TransferCurve() []float64 {
	// Incremental evaluation: O(codes) instead of O(codes × sources).
	n := d.Config.Codes()
	out := make([]float64, n)
	binBits := d.Config.BinaryBits
	binMask := (1 << binBits) - 1
	unaryWeight := float64(int(1) << binBits)

	// Precompute binary sub-curve for one segment.
	binCurve := make([]float64, 1<<binBits)
	for c := 1; c < len(binCurve); c++ {
		v := 0.0
		for b := 0; b < binBits; b++ {
			if c&(1<<b) != 0 {
				v += float64(int(1)<<b) + d.binErr[b]
			}
		}
		binCurve[c] = v
	}
	base := 0.0
	seg := -1
	for code := 0; code < n; code++ {
		s := code >> binBits
		if s != seg {
			if s > 0 {
				base += unaryWeight + d.unaryErr[d.seq[s-1]]
			}
			seg = s
		}
		out[code] = base + binCurve[code&binMask]
	}
	return out
}

// INL returns the endpoint-corrected integral nonlinearity in LSB for a
// transfer curve: the deviation from the straight line through the first
// and last points.
func INL(curve []float64) []float64 {
	n := len(curve)
	if n < 2 {
		panic("calib: INL needs at least two codes")
	}
	out := make([]float64, n)
	slope := (curve[n-1] - curve[0]) / float64(n-1)
	for i := range curve {
		out[i] = curve[i] - (curve[0] + slope*float64(i))
	}
	return out
}

// DNL returns the differential nonlinearity in LSB: step size deviation
// from the average step.
func DNL(curve []float64) []float64 {
	n := len(curve)
	if n < 2 {
		panic("calib: DNL needs at least two codes")
	}
	avg := (curve[n-1] - curve[0]) / float64(n-1)
	out := make([]float64, n-1)
	for i := 1; i < n; i++ {
		out[i-1] = (curve[i]-curve[i-1])/avg - 1
	}
	return out
}

// MaxAbs returns max |x|.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// MaxINL fabricates nothing: it reports the worst |INL| of this DAC
// instance with its current switching sequence.
func (d *DAC) MaxINL() float64 { return MaxAbs(INL(d.TransferCurve())) }

// MaxDNL reports the worst |DNL| of this instance.
func (d *DAC) MaxDNL() float64 { return MaxAbs(DNL(d.TransferCurve())) }

// CalibrateSSPA runs Switching-Sequence Post-Adjustment: using the
// measured source errors (the silicon implementation measures them with a
// simple current comparator), it greedily re-orders the unary switching
// sequence so the running error sum stays as close to zero as possible.
// The random-walk INL of the thermometer order collapses to a bounded
// ripple. measurementNoise adds σ (LSB) of comparator noise to each
// measured error, 0 for ideal measurement.
func (d *DAC) CalibrateSSPA(measurementNoise float64, rng *mathx.RNG) {
	n := len(d.unaryErr)
	measured := make([]float64, n)
	for i, e := range d.unaryErr {
		measured[i] = e
		if measurementNoise > 0 {
			measured[i] += measurementNoise * rng.Norm()
		}
	}
	// The total error S = Σ measured is fixed by fabrication — no ordering
	// changes it — and endpoint-corrected INL measures the deviation of
	// the running sum from the ramp k·S/n. Subtracting the per-step ramp
	// increment turns the problem into classic prefix-sum balancing:
	// arrange x_i = e_i − S/n (which sum to exactly 0) so that every
	// prefix stays as close to zero as possible.
	total := 0.0
	for _, e := range measured {
		total += e
	}
	step := total / float64(n)
	x := make([]float64, n)
	for i, e := range measured {
		x[i] = e - step
	}

	// order: indices sorted by |x| descending, computed once.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort, n ≤ 65535 sources but tiny in practice
		for j := i; j > 0 && math.Abs(x[order[j]]) > math.Abs(x[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Greedy prefix balancing: at each position pick the unused element —
	// preferring the most dangerous (largest |x|) on ties via the
	// pre-sorted candidate order — that keeps the running sum closest to
	// zero. The ordering-independent total has already been absorbed into
	// x, so |prefix| IS the segment-boundary INL.
	used := make([]bool, n)
	seq := make([]int, 0, n)
	cum := 0.0
	for len(seq) < n {
		best := -1
		bestScore := math.Inf(1)
		for _, e := range order {
			if used[e] {
				continue
			}
			if score := math.Abs(cum + x[e]); score < bestScore {
				bestScore = score
				best = e
			}
		}
		used[best] = true
		seq = append(seq, best)
		cum += x[best]
	}

	// 2-opt refinement: pairwise swaps that reduce the worst prefix
	// deviation clean up greedy's tail artefacts.
	maxDev := func(s []int) float64 {
		c, worst := 0.0, 0.0
		for _, idx := range s {
			c += x[idx]
			if a := math.Abs(c); a > worst {
				worst = a
			}
		}
		return worst
	}
	bestDev := maxDev(seq)
	for sweep := 0; sweep < 8; sweep++ {
		improved := false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				seq[i], seq[j] = seq[j], seq[i]
				if dv := maxDev(seq); dv < bestDev {
					bestDev = dv
					improved = true
				} else {
					seq[i], seq[j] = seq[j], seq[i]
				}
			}
		}
		if !improved {
			break
		}
	}
	copy(d.seq, seq)
}
