package calib

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/variation"
)

// INLYield estimates the fraction of fabricated DACs meeting |INL| <=
// limit (LSB) at the given unit-source sigma, over nMC Monte-Carlo
// fabrications. calibrated selects whether SSPA runs on each instance.
// Deterministic in (cfg, seed).
func INLYield(cfg DACConfig, limit float64, calibrated bool, nMC int, seed uint64) (variation.YieldEstimate, error) {
	if nMC <= 0 {
		return variation.YieldEstimate{}, fmt.Errorf("calib: nMC must be positive")
	}
	res, err := variation.MonteCarloCtx(context.Background(), nMC, seed, func(rng *mathx.RNG, _ int) (float64, error) {
		d, err := NewDAC(cfg, rng)
		if err != nil {
			return 0, err
		}
		if calibrated {
			d.CalibrateSSPA(0, rng)
		}
		return d.MaxINL(), nil
	})
	if err != nil {
		return variation.YieldEstimate{}, err
	}
	return variation.EstimateYield(res.Values, variation.Spec{Name: "INL", Lo: 0, Hi: limit}), nil
}

// RequiredSigmaUnit returns the largest unit-source sigma that still meets
// the INL limit with at least targetYield, found by bisection over
// Monte-Carlo yield. This is the quantity that sets analog area: matching
// improves with device area as σ ∝ 1/√A (Pelgrom), so area ∝ 1/σ².
func RequiredSigmaUnit(cfg DACConfig, limit, targetYield float64, calibrated bool, nMC int, seed uint64) (float64, error) {
	if targetYield <= 0 || targetYield >= 1 {
		return 0, fmt.Errorf("calib: target yield %g out of (0,1)", targetYield)
	}
	meets := func(sigma float64) bool {
		c := cfg
		c.SigmaUnit = sigma
		y, err := INLYield(c, limit, calibrated, nMC, seed)
		if err != nil {
			return false
		}
		return y.Yield >= targetYield
	}
	lo, hi := 1e-6, 0.5
	if !meets(lo) {
		return 0, fmt.Errorf("calib: spec unreachable even at σ=%g", lo)
	}
	if meets(hi) {
		return hi, nil
	}
	for i := 0; i < 40; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection, σ spans decades
		if meets(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// AreaStudy is the Fig. 5 reproduction result.
type AreaStudy struct {
	// SigmaIntrinsic is the unit-source sigma an uncalibrated DAC needs.
	SigmaIntrinsic float64
	// SigmaCalibrated is the sigma the SSPA-calibrated DAC tolerates.
	SigmaCalibrated float64
	// AnalogAreaRatio = (SigmaIntrinsic/SigmaCalibrated)², the calibrated
	// DAC's analog area as a fraction of the intrinsic-accuracy one
	// (Pelgrom: area ∝ 1/σ²). The paper reports ~6 %.
	AnalogAreaRatio float64
}

// RunAreaStudy computes the area ratio for a configuration and INL limit
// (the paper uses INL < 0.5 LSB) at the given yield target.
func RunAreaStudy(cfg DACConfig, limit, targetYield float64, nMC int, seed uint64) (*AreaStudy, error) {
	si, err := RequiredSigmaUnit(cfg, limit, targetYield, false, nMC, seed)
	if err != nil {
		return nil, fmt.Errorf("calib: intrinsic sigma search: %w", err)
	}
	sc, err := RequiredSigmaUnit(cfg, limit, targetYield, true, nMC, seed)
	if err != nil {
		return nil, fmt.Errorf("calib: calibrated sigma search: %w", err)
	}
	r := si / sc
	return &AreaStudy{
		SigmaIntrinsic:  si,
		SigmaCalibrated: sc,
		AnalogAreaRatio: r * r,
	}, nil
}
