package calib_test

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/mathx"
)

// Example shows the SSPA calibration flow: fabricate a mismatched 14-bit
// DAC, calibrate, and compare the worst INL.
func Example() {
	d, err := calib.NewDAC(calib.Paper14Bit(0.008), mathx.NewRNG(7))
	if err != nil {
		fmt.Println(err)
		return
	}
	before := d.MaxINL()
	d.CalibrateSSPA(0, mathx.NewRNG(1))
	fmt.Printf("INL %.2f -> %.2f LSB\n", before, d.MaxINL())
	// Output:
	// INL 0.89 -> 0.32 LSB
}
