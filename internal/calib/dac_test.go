package calib

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func perfectDAC(t *testing.T, unary, binary int) *DAC {
	t.Helper()
	d, err := NewDAC(DACConfig{UnaryBits: unary, BinaryBits: binary, SigmaUnit: 0}, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPerfectDACIsLinear(t *testing.T) {
	d := perfectDAC(t, 3, 4)
	for code := 0; code < d.Config.Codes(); code++ {
		if got := d.Output(code); got != float64(code) {
			t.Fatalf("Output(%d) = %g", code, got)
		}
	}
	if d.MaxINL() != 0 || d.MaxDNL() != 0 {
		t.Error("perfect DAC must have zero INL/DNL")
	}
}

func TestTransferCurveMatchesOutput(t *testing.T) {
	d, err := NewDAC(DACConfig{UnaryBits: 4, BinaryBits: 5, SigmaUnit: 0.02}, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	curve := d.TransferCurve()
	for code := 0; code < d.Config.Codes(); code += 7 {
		if !mathx.ApproxEqual(curve[code], d.Output(code), 1e-12, 1e-12) {
			t.Fatalf("curve[%d] = %g, Output = %g", code, curve[code], d.Output(code))
		}
	}
}

func TestINLDNLDefinitions(t *testing.T) {
	// Hand-built curve: ideal 0,1,2,3 with a bump at code 2.
	curve := []float64{0, 1, 2.5, 3}
	inl := INL(curve)
	if inl[0] != 0 || inl[3] != 0 {
		t.Error("endpoint-corrected INL must vanish at the endpoints")
	}
	if !mathx.ApproxEqual(inl[2], 0.5, 1e-12, 0) {
		t.Errorf("INL[2] = %g, want 0.5", inl[2])
	}
	dnl := DNL(curve)
	// Steps: 1, 1.5, 0.5 against average 1.
	want := []float64{0, 0.5, -0.5}
	for i := range want {
		if !mathx.ApproxEqual(dnl[i], want[i], 1e-12, 1e-12) {
			t.Errorf("DNL[%d] = %g, want %g", i, dnl[i], want[i])
		}
	}
}

func TestDACOutputPanicsOutOfRange(t *testing.T) {
	d := perfectDAC(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Output(16)
}

func TestConfigValidation(t *testing.T) {
	bad := []DACConfig{
		{UnaryBits: 0, BinaryBits: 4},
		{UnaryBits: 4, BinaryBits: -1},
		{UnaryBits: 10, BinaryBits: 10},
		{UnaryBits: 4, BinaryBits: 4, SigmaUnit: -0.1},
	}
	for _, cfg := range bad {
		if _, err := NewDAC(cfg, mathx.NewRNG(1)); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if Paper14Bit(0.01).Bits() != 14 {
		t.Error("paper config must be 14 bits")
	}
}

func TestSetSequenceValidation(t *testing.T) {
	d := perfectDAC(t, 3, 2) // 7 unary sources
	if err := d.SetSequence([]int{0, 1, 2}); err == nil {
		t.Error("short sequence accepted")
	}
	if err := d.SetSequence([]int{0, 1, 2, 3, 4, 5, 5}); err == nil {
		t.Error("non-permutation accepted")
	}
	if err := d.SetSequence([]int{6, 5, 4, 3, 2, 1, 0}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
}

func TestSSPAImprovesINL(t *testing.T) {
	cfg := Paper14Bit(0.03)
	worse, better := 0, 0
	for seed := uint64(0); seed < 20; seed++ {
		d, err := NewDAC(cfg, mathx.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		before := d.MaxINL()
		d.CalibrateSSPA(0, mathx.NewRNG(seed+1000))
		after := d.MaxINL()
		if after < before {
			better++
		} else {
			worse++
		}
	}
	if better < 18 {
		t.Errorf("SSPA improved only %d/20 instances", better)
	}
}

func TestSSPAIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		d, err := NewDAC(Paper14Bit(0.05), mathx.NewRNG(seed))
		if err != nil {
			return false
		}
		d.CalibrateSSPA(0, mathx.NewRNG(seed))
		seq := d.Sequence()
		seen := make([]bool, len(seq))
		for _, s := range seq {
			if s < 0 || s >= len(seq) || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSSPAReachesHalfLSB(t *testing.T) {
	// At a mismatch level hopeless for intrinsic accuracy, SSPA should
	// still deliver INL < 0.5 LSB on most instances (the Fig. 5 claim).
	cfg := Paper14Bit(0.008)
	pass := 0
	const n = 15
	for seed := uint64(0); seed < n; seed++ {
		d, err := NewDAC(cfg, mathx.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if d.MaxINL() < 0.5 {
			t.Logf("seed %d intrinsically accurate already (INL=%g)", seed, d.MaxINL())
		}
		d.CalibrateSSPA(0, mathx.NewRNG(seed))
		if d.MaxINL() < 0.5 {
			pass++
		}
	}
	if pass < n*2/3 {
		t.Errorf("SSPA reached 0.5 LSB on only %d/%d instances", pass, n)
	}
}

func TestSSPAWithMeasurementNoiseDegradesGracefully(t *testing.T) {
	cfg := Paper14Bit(0.03)
	var cleanSum, noisySum float64
	for seed := uint64(0); seed < 10; seed++ {
		d1, _ := NewDAC(cfg, mathx.NewRNG(seed))
		d2, _ := NewDAC(cfg, mathx.NewRNG(seed)) // identical instance
		// The noise RNG must not share the fabrication seed: the same
		// stream would re-emit the very normals that built the errors,
		// making the "noise" a perfectly correlated scale factor.
		d1.CalibrateSSPA(0, mathx.NewRNG(seed+7777))
		d2.CalibrateSSPA(2.0, mathx.NewRNG(seed+7777)) // hopeless comparator
		cleanSum += d1.MaxINL()
		noisySum += d2.MaxINL()
	}
	if noisySum <= cleanSum {
		t.Errorf("very noisy measurement should hurt calibration: %g <= %g", noisySum, cleanSum)
	}
}

func TestResetSequenceRestoresThermometer(t *testing.T) {
	d, _ := NewDAC(Paper14Bit(0.03), mathx.NewRNG(2))
	before := d.MaxINL()
	d.CalibrateSSPA(0, mathx.NewRNG(2))
	d.ResetSequence()
	if d.MaxINL() != before {
		t.Error("ResetSequence did not restore the original transfer curve")
	}
}

func TestINLYieldCalibratedBeatsIntrinsic(t *testing.T) {
	cfg := Paper14Bit(0.008)
	raw, err := INLYield(cfg, 0.5, false, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := INLYield(cfg, 0.5, true, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Yield <= raw.Yield {
		t.Errorf("calibrated yield %v not above intrinsic %v", cal, raw)
	}
	if cal.Yield < 0.9 {
		t.Errorf("calibrated yield %v unexpectedly low", cal)
	}
}

func TestINLYieldDeterministic(t *testing.T) {
	cfg := Paper14Bit(0.01)
	a, _ := INLYield(cfg, 0.5, true, 40, 3)
	b, _ := INLYield(cfg, 0.5, true, 40, 3)
	if a != b {
		t.Error("yield not reproducible for fixed seed")
	}
}

func TestRequiredSigmaOrdering(t *testing.T) {
	cfg := Paper14Bit(0) // sigma set by the search
	si, err := RequiredSigmaUnit(cfg, 0.5, 0.9, false, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RequiredSigmaUnit(cfg, 0.5, 0.9, true, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sc <= si {
		t.Fatalf("calibration must tolerate more mismatch: σcal=%g σint=%g", sc, si)
	}
	ratio := (si / sc) * (si / sc)
	if ratio > 0.5 {
		t.Errorf("area ratio %g — calibration should save far more area", ratio)
	}
}

func TestRunAreaStudyShape(t *testing.T) {
	study, err := RunAreaStudy(Paper14Bit(0), 0.5, 0.9, 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 5 claim is ~6 %; accept the right order of magnitude (our
	// statistical substrate differs from silicon).
	if study.AnalogAreaRatio <= 0 || study.AnalogAreaRatio > 0.3 {
		t.Errorf("area ratio %g out of the plausible band", study.AnalogAreaRatio)
	}
	if study.SigmaCalibrated <= study.SigmaIntrinsic {
		t.Error("sigma ordering broken")
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs([]float64{-3, 1, 2}) != 3 {
		t.Error("MaxAbs broken")
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) should be 0")
	}
}

func TestINLPanicsOnShortCurve(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	INL([]float64{1})
}

func TestBinaryCarryDNL(t *testing.T) {
	// With only binary errors, the worst DNL sits at the major carry.
	cfg := DACConfig{UnaryBits: 1, BinaryBits: 6, SigmaUnit: 0.05}
	d, err := NewDAC(cfg, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	dnl := DNL(d.TransferCurve())
	worstIdx, worst := 0, 0.0
	for i, v := range dnl {
		if math.Abs(v) > worst {
			worst = math.Abs(v)
			worstIdx = i
		}
	}
	// Worst step should involve a high-bit carry (codes with many bits
	// toggling), i.e. index+1 divisible by a decent power of two.
	if (worstIdx+1)%8 != 0 {
		t.Logf("worst DNL at step %d (value %g) — acceptable but unusual", worstIdx, worst)
	}
	if worst == 0 {
		t.Error("mismatched DAC cannot have zero DNL")
	}
}
