package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

func testSpec(seed uint64) *jobspec.Spec {
	s := &jobspec.Spec{
		Analysis: jobspec.KindMC,
		Netlist:  "* deck\n.end",
		Seed:     seed,
		MC:       &jobspec.MCParams{Trials: 10, Node: "out"},
	}
	s.ApplyDefaults()
	return s
}

func mustOpen(t *testing.T, dir string, reg *obs.Registry, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	if got := s.Recovered(); len(got) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(got))
	}

	spec := testSpec(7)
	hash := spec.CanonicalHash()
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	result := []byte(`{"kind":"mc","seed":7,"elapsed":"1ms"}`)
	if err := s.JobSubmitted("job-000001", spec, hash, SubmitMeta{}, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000001", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000001", StateDone, "", result, true, t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(rec))
	}
	r := rec[0]
	if r.ID != "job-000001" || r.State != StateDone || r.Hash != hash {
		t.Fatalf("recovered = %+v", r)
	}
	if !r.Submitted.Equal(t0) || !r.Started.Equal(t0.Add(time.Second)) || !r.Finished.Equal(t0.Add(2*time.Second)) {
		t.Errorf("times not preserved: %+v", r)
	}
	if string(r.Result) != string(result) {
		t.Errorf("result = %q, want byte-identical %q", r.Result, result)
	}
	if r.Spec == nil || r.Spec.Seed != 7 || r.Spec.Analysis != jobspec.KindMC {
		t.Errorf("spec not preserved: %+v", r.Spec)
	}
	// The cache survived the restart too.
	if id, b, ok := s2.CachedResult(hash); !ok || id != "job-000001" || string(b) != string(result) {
		t.Errorf("cache after reopen: id=%q ok=%v result=%q", id, ok, b)
	}
}

func TestStoreRecoveryClassification(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	now := time.Now()

	// done, queued (submitted only) and interrupted (running, no terminal).
	if err := s.JobSubmitted("job-000001", testSpec(1), testSpec(1).CanonicalHash(), SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000001", now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000001", StateFailed, "deck error", nil, false, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobSubmitted("job-000002", testSpec(2), testSpec(2).CanonicalHash(), SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobSubmitted("job-000003", testSpec(3), testSpec(3).CanonicalHash(), SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000003", now); err != nil {
		t.Fatal(err)
	}
	s.Close()

	reg := obs.NewRegistry()
	s2 := mustOpen(t, dir, reg, Options{})
	rec := s2.Recovered()
	if len(rec) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(rec))
	}
	states := map[string]string{}
	for _, r := range rec {
		states[r.ID] = r.State
	}
	want := map[string]string{
		"job-000001": StateFailed,
		"job-000002": StateQueued,
		"job-000003": StateInterrupted,
	}
	for id, st := range want {
		if states[id] != st {
			t.Errorf("job %s recovered as %q, want %q", id, states[id], st)
		}
	}
	if n, _ := reg.Snapshot().Counter("store_replayed_jobs_total"); n != 3 {
		t.Errorf("store_replayed_jobs_total = %d, want 3", n)
	}

	e := &InterruptedError{JobID: "job-000003", Started: now}
	if !strings.Contains(e.Error(), "job-000003") || !strings.Contains(e.Error(), "interrupted") {
		t.Errorf("InterruptedError text = %q", e)
	}
}

func TestStoreCacheSemantics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, dir, reg, Options{})
	now := time.Now()
	spec := testSpec(5)
	hash := spec.CanonicalHash()

	if _, _, ok := s.CachedResult(hash); ok {
		t.Fatal("empty store reported a cache hit")
	}
	if err := s.JobSubmitted("job-000001", spec, hash, SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	// cacheable=false (e.g. a partial or no_cache run) must not populate.
	if err := s.JobTerminal("job-000001", StateDone, "", []byte(`{"partial":true}`), false, now); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.CachedResult(hash); ok {
		t.Fatal("non-cacheable terminal populated the cache")
	}
	// A cacheable run does.
	if err := s.JobSubmitted("job-000002", spec, hash, SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000002", StateDone, "", []byte(`{"kind":"mc"}`), true, now); err != nil {
		t.Fatal(err)
	}
	id, b, ok := s.CachedResult(hash)
	if !ok || id != "job-000002" || string(b) != `{"kind":"mc"}` {
		t.Fatalf("cache hit = %q %q %v", id, b, ok)
	}
	snap := reg.Snapshot()
	if n, _ := snap.Counter("store_cache_hits_total"); n != 1 {
		t.Errorf("store_cache_hits_total = %d, want 1", n)
	}
	if n, _ := snap.Counter("store_cache_misses_total"); n != 2 {
		t.Errorf("store_cache_misses_total = %d, want 2", n)
	}
}

func TestStoreEvictAndCompact(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, dir, reg, Options{CompactEvery: 2})
	now := time.Now()
	ids := []string{"job-000001", "job-000002", "job-000003", "job-000004"}
	for i, id := range ids {
		spec := testSpec(uint64(i + 1))
		if err := s.JobSubmitted(id, spec, spec.CanonicalHash(), SubmitMeta{}, now); err != nil {
			t.Fatal(err)
		}
		if err := s.JobTerminal(id, StateDone, "", []byte(`{"i":`+id[len(id)-1:]+`}`), true, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Evict(ids[:2], now); err != nil {
		t.Fatal(err)
	}
	if got := s.Jobs(); got != 2 {
		t.Fatalf("live jobs after evict = %d, want 2", got)
	}
	snap := reg.Snapshot()
	if n, _ := snap.Counter("store_evictions_total"); n != 2 {
		t.Errorf("store_evictions_total = %d, want 2", n)
	}
	if n, _ := snap.Counter("store_compactions_total"); n != 1 {
		t.Errorf("store_compactions_total = %d, want 1 (CompactEvery=2)", n)
	}
	// Evicted snapshots are gone from disk; survivors remain.
	if _, err := os.Stat(s.resultPath(ids[0])); !os.IsNotExist(err) {
		t.Errorf("evicted result file still on disk: %v", err)
	}
	if _, err := os.Stat(s.resultPath(ids[3])); err != nil {
		t.Errorf("surviving result file missing: %v", err)
	}
	// The compacted journal replays to exactly the survivors.
	s.Close()
	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 2 || rec[0].ID != ids[2] || rec[1].ID != ids[3] {
		t.Fatalf("after compaction recovered %+v, want [%s %s]", rec, ids[2], ids[3])
	}
	// An evicted job's cache entry died with it; the survivor's lives.
	if _, _, ok := s2.CachedResult(testSpec(1).CanonicalHash()); ok {
		t.Error("evicted job still answers from the cache")
	}
	if _, _, ok := s2.CachedResult(testSpec(4).CanonicalHash()); !ok {
		t.Error("surviving job lost its cache entry")
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	now := time.Now()
	spec := testSpec(9)
	if err := s.JobSubmitted("job-000001", spec, spec.CanonicalHash(), SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000001", StateDone, "", []byte(`{"ok":true}`), true, now); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a torn, newline-less record fragment.
	f, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"time":"2026-08-05T12:00:00Z","job":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 1 || rec[0].State != StateDone {
		t.Fatalf("after torn tail recovered %+v", rec)
	}
	// The open compacted the tear away: appends continue cleanly and a
	// third open sees both jobs intact.
	spec2 := testSpec(10)
	if err := s2.JobSubmitted("job-000002", spec2, spec2.CanonicalHash(), SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, nil, Options{})
	if rec := s3.Recovered(); len(rec) != 2 {
		t.Fatalf("after repair recovered %d jobs, want 2", len(rec))
	}
}

func TestStoreOrphanResultGC(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	s.Close()
	orphan := filepath.Join(dir, "results", "job-999999.json")
	if err := os.WriteFile(orphan, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir, nil, Options{})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan result snapshot not garbage-collected: %v", err)
	}
}

func TestStoreResultSnapshotDecodable(t *testing.T) {
	// The snapshot path must round-trip a real jobspec.Result untouched.
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	res := &jobspec.Result{Kind: jobspec.KindMC, Seed: 3, MC: &jobspec.MCOutcome{Node: "out", Requested: 2, Values: []float64{0.5, 0.6}}}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(3)
	now := time.Now()
	if err := s.JobSubmitted("job-000001", spec, spec.CanonicalHash(), SubmitMeta{}, now); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000001", StateDone, "", raw, true, now); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, nil, Options{})
	var got jobspec.Result
	if err := json.Unmarshal(s2.Recovered()[0].Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seed != 3 || got.MC == nil || len(got.MC.Values) != 2 {
		t.Fatalf("round-tripped result = %+v", got)
	}
}
