package store

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// chunkPayload fakes a variation.ChunkStat wire payload — the store
// treats checkpoint data as opaque bytes, so the shape only matters to
// the resuming executor.
func chunkPayload(chunk int) []byte {
	return []byte(fmt.Sprintf(`{"chunk":%d,"from":%d,"to":%d,"stats":{"moments":{"n":24}}}`,
		chunk, chunk*24, (chunk+1)*24))
}

// Checkpoints journaled for a running job must come back, in chunk
// order and byte-identical, on the Interrupted RecoveredJob after a
// reopen — including chunk 0, whose record omits the chunk field.
func TestCheckpointReplayOnInterrupted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	spec := testSpec(7)
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := s.JobSubmitted("job-000001", spec, spec.CanonicalHash(), SubmitMeta{}, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000001", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	// Journal out of order and with a rewrite: replay keeps the last
	// payload per chunk and sorts ascending.
	for _, c := range []int{2, 0, 1, 2} {
		if err := s.JobCheckpoint("job-000001", c, chunkPayload(c), t0.Add(2*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // no terminal record: the "crash"

	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 1 || rec[0].State != StateInterrupted {
		t.Fatalf("recovered %+v, want one interrupted job", rec)
	}
	cps := rec[0].Checkpoints
	if len(cps) != 3 {
		t.Fatalf("recovered %d checkpoints, want 3", len(cps))
	}
	for i, cp := range cps {
		if cp.Chunk != i {
			t.Errorf("checkpoint %d has chunk %d, want ascending order", i, cp.Chunk)
		}
		if string(cp.Data) != string(chunkPayload(i)) {
			t.Errorf("chunk %d payload %s, want %s", i, cp.Data, chunkPayload(i))
		}
	}
}

// Satellite: journal compaction mid-campaign must preserve the live
// job's checkpoint records — compacting is reclaiming garbage, not
// forgetting progress.
func TestCompactionPreservesLiveCheckpoints(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// CompactEvery=1: every eviction compacts, deterministically.
	s := mustOpen(t, dir, reg, Options{CompactEvery: 1})
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// A finished job to evict, plus a campaign mid-flight.
	done := testSpec(1)
	if err := s.JobSubmitted("job-000001", done, done.CanonicalHash(), SubmitMeta{}, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000001", StateDone, "", []byte(`{"kind":"mc"}`), false, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	camp := testSpec(2)
	if err := s.JobSubmitted("job-000002", camp, camp.CanonicalHash(), SubmitMeta{}, t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000002", t0.Add(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if err := s.JobCheckpoint("job-000002", c, chunkPayload(c), t0.Add(4*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	// Evict the terminal job: triggers a full journal rewrite.
	if err := s.Evict([]string{"job-000001"}, t0.Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	if n, _ := reg.Snapshot().Counter("store_compactions_total"); n != 1 {
		t.Fatalf("store_compactions_total = %d, want 1", n)
	}
	b, err := os.ReadFile(s.journalPath())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), `"state":"checkpoint"`); got != 2 {
		t.Fatalf("compacted journal holds %d checkpoint records, want 2:\n%s", got, b)
	}
	s.Close()

	// And the campaign still resumes after the compaction.
	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 1 || rec[0].State != StateInterrupted || len(rec[0].Checkpoints) != 2 {
		t.Fatalf("post-compaction recovery %+v, want interrupted with 2 checkpoints", rec)
	}
}

// Satellite: count- and age-based eviction must refuse to drop a
// non-terminal (resumable) job even when the caller names it.
func TestEvictRefusesNonTerminal(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, dir, reg, Options{CompactEvery: 1})
	spec := testSpec(3)
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := s.JobSubmitted("job-000001", spec, spec.CanonicalHash(), SubmitMeta{}, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000001", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobCheckpoint("job-000001", 0, chunkPayload(0), t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict([]string{"job-000001"}, t0.Add(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.Jobs() != 1 {
		t.Fatal("eviction dropped a running (resumable) job")
	}
	if n, _ := reg.Snapshot().Counter("store_evictions_total"); n != 0 {
		t.Errorf("store_evictions_total = %d, want 0", n)
	}
	s.Close()
	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 1 || len(rec[0].Checkpoints) != 1 {
		t.Fatalf("recovery after refused eviction %+v, want the checkpointed job intact", rec)
	}
}

// A terminal transition sheds the job's checkpoints: they never ride a
// done job's recovery, and the next compaction drops their records.
func TestTerminalShedsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, nil, Options{})
	spec := testSpec(4)
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := s.JobSubmitted("job-000001", spec, spec.CanonicalHash(), SubmitMeta{}, t0); err != nil {
		t.Fatal(err)
	}
	if err := s.JobRunning("job-000001", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobCheckpoint("job-000001", 0, chunkPayload(0), t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.JobTerminal("job-000001", StateDone, "", []byte(`{"kind":"mc"}`), false, t0.Add(3*time.Second)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, nil, Options{})
	rec := s2.Recovered()
	if len(rec) != 1 || rec[0].State != StateDone {
		t.Fatalf("recovered %+v, want one done job", rec)
	}
	if len(rec[0].Checkpoints) != 0 {
		t.Errorf("done job still carries %d checkpoints", len(rec[0].Checkpoints))
	}
	// Replay flagged the stale checkpoint records as garbage and
	// compacted them away at open.
	b, err := os.ReadFile(s2.journalPath())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"state":"checkpoint"`) {
		t.Error("compacted journal still holds checkpoint records for a terminal job")
	}
	_ = json.Valid(b)
}
