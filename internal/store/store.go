// Package store is the durability layer under the job service: the
// paper's §5.2 resilience loop runs reliability analyses as continuous
// campaigns, and a campaign that dies with the process — or whose
// results are recomputed on every identical resubmission — is not
// continuous. Because every analysis in this reproduction is a pure
// function of its validated (Spec, Seed) — seeded Pelgrom mismatch
// trials (Eq. 1) and the deterministic degradation laws of Eqs. 2–4
// (HCI, NBTI, Black's EM) — terminal results are worth persisting and
// deduplicating. The store journals job lifecycle transitions
// (submitted → running → terminal) as append-only NDJSON, snapshots
// each terminal jobspec.Result to its own file, and on open replays the
// journal: terminal jobs are restored verbatim, jobs that were still
// queued are handed back for re-execution, and jobs that died mid-run
// are classified interrupted (their persisted partial results intact).
// On top sits a content-addressed result cache keyed by the canonical
// spec hash, and a journal compactor that keeps disk usage bounded as
// the retention policy evicts old jobs.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// Lifecycle states recorded in the journal. Queued and Interrupted only
// ever appear on recovered jobs (a queued job has a submitted record and
// nothing else; an interrupted one has a running record and no terminal
// record — the classification is made at replay, never written).
const (
	StateSubmitted   = "submitted"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateEvicted     = "evicted"
	StateQueued      = "queued"
	StateInterrupted = "interrupted"
	// StateCheckpoint records one completed campaign chunk of a running
	// job. Checkpoints are progress, not lifecycle: a job with running +
	// checkpoint records and no terminal record replays as Interrupted
	// with its Checkpoints attached, so the server can resume the
	// campaign instead of failing it.
	StateCheckpoint = "checkpoint"
)

// InterruptedError is the structured cause attached to a job that was
// running when the process died: the journal holds its running record
// but no terminal record, so the run can never report a verdict.
type InterruptedError struct {
	JobID   string
	Started time.Time
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("store: job %s interrupted: the server exited mid-run (started %s); resubmit to re-run",
		e.JobID, e.Started.Format(time.RFC3339))
}

// Options tunes a Store. The zero value is the production configuration.
type Options struct {
	// NoFsync skips the per-append fsync (tests; crash-safety is then
	// only as good as the page cache).
	NoFsync bool
	// CompactEvery rewrites the journal after this many evictions
	// (default 64). 1 compacts on every eviction — deterministic for
	// tests, quadratic under sustained eviction.
	CompactEvery int
}

// SubmitMeta is the admission metadata journaled with a submitted
// record: the owning tenant and the scheduling class the job was
// admitted under. Replaying it is what lets a restarted server rebuild
// per-tenant fair-share accounting and put every recovered job back in
// its owner's weighted queue. Zero values mean the single-tenant,
// default-class admission path.
type SubmitMeta struct {
	Tenant string
	Class  string
	// Node names the fleet node that owns the job (empty outside fleet
	// mode). A surviving node replaying a dead peer's journal uses it to
	// tell adopted work from its own.
	Node string
	// Internal marks a fleet-dispatched shard sub-job. Internal jobs are
	// never adopted during failover: their dispatching owner re-runs the
	// shard through its own fallback path.
	Internal bool
}

// RecoveredJob is one job reconstructed from the journal at Open, in
// submit order. State is one of Done/Failed/Cancelled (terminal, Result
// loaded from its snapshot file when one exists), Queued (submitted but
// never started — re-run it) or Interrupted (started but never finished
// — fail it with an InterruptedError; Result carries any partial
// snapshot that made it to disk before the crash).
type RecoveredJob struct {
	ID        string
	Spec      *jobspec.Spec
	Hash      string
	Tenant    string
	Class     string
	Node      string
	Internal  bool
	State     string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Error     string
	Result    json.RawMessage
	// Checkpoints holds the job's journaled campaign chunks in ascending
	// chunk order — only ever populated on Interrupted jobs (terminal
	// jobs shed their checkpoints). Handing the payloads to
	// jobspec.Options.Resume continues the campaign from here.
	Checkpoints []CheckpointRec
}

// CheckpointRec is one journaled campaign chunk checkpoint.
type CheckpointRec struct {
	Chunk int
	Data  json.RawMessage
}

// record is one NDJSON journal line. Spec and Hash ride only on
// submitted records; Error and Cached only on terminal ones.
type record struct {
	Time  time.Time     `json:"time"`
	Job   string        `json:"job"`
	State string        `json:"state"`
	Spec  *jobspec.Spec `json:"spec,omitempty"`
	Hash  string        `json:"hash,omitempty"`
	// Tenant and Class ride only on submitted records: the owning tenant
	// and scheduling class the job was admitted under. They are what a
	// restarted server replays to rebuild per-tenant fair-share state.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Node and Internal ride only on submitted records: the fleet node
	// that owned the job at admission, and whether it is a fleet-internal
	// shard sub-job (skipped by failover adoption).
	Node     string `json:"node,omitempty"`
	Internal bool   `json:"internal,omitempty"`
	Error    string `json:"error,omitempty"`
	// Cached marks a done record whose result was entered into the
	// spec-hash cache, so replay rebuilds the cache exactly.
	Cached bool `json:"cached,omitempty"`
	// Chunk and Data ride only on checkpoint records: the global chunk
	// index and the chunk's summary payload. omitempty on Chunk is safe —
	// an absent chunk decodes as 0, which is exactly chunk 0.
	Chunk int             `json:"chunk,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// jobRec is the store's in-memory state for one journaled job — exactly
// enough to rewrite the job's records during compaction and to classify
// it at replay.
type jobRec struct {
	id        string
	spec      *jobspec.Spec
	hash      string
	tenant    string
	class     string
	node      string
	internal  bool
	submitted time.Time
	started   time.Time
	state     string // "" until terminal
	errMsg    string
	finished  time.Time
	cached    bool
	// ckpts holds the job's live checkpoint payloads by chunk index. A
	// terminal transition clears them (the result supersedes them); a
	// later chunk record for the same index overwrites the earlier one.
	ckpts map[int]ckptRec
}

// ckptRec is one in-memory checkpoint: the journaled time and payload.
type ckptRec struct {
	t    time.Time
	data json.RawMessage
}

// sortedChunks returns the job's checkpointed chunk indices ascending.
func (r *jobRec) sortedChunks() []int {
	if len(r.ckpts) == 0 {
		return nil
	}
	chunks := make([]int, 0, len(r.ckpts))
	for c := range r.ckpts {
		chunks = append(chunks, c)
	}
	sort.Ints(chunks)
	return chunks
}

func (r *jobRec) terminal() bool { return r.state != "" }

// Store is a disk-backed journal of job lifecycles plus a result cache.
// All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	met  *metrics
	// readOnly marks a ReadJournal replay: no journal handle, no orphan
	// GC, no writes of any kind against the directory.
	readOnly bool

	mu        sync.Mutex
	f         *os.File
	jobs      map[string]*jobRec
	order     []string
	cache     map[string]string // spec hash -> job id with a snapshot on disk
	evictions int               // since last compaction
	recovered []RecoveredJob
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.ndjson") }
func (s *Store) resultsDir() string  { return filepath.Join(s.dir, "results") }
func (s *Store) resultPath(id string) string {
	return filepath.Join(s.resultsDir(), id+".json")
}

// Open opens (creating if necessary) the store rooted at dir, replays
// the journal and leaves the recovered jobs available via Recovered.
// A torn final line — the signature of a crash mid-append — is
// truncated away; garbage accumulated by evictions is compacted.
func Open(dir string, reg *obs.Registry, opts Options) (*Store, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 64
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		met:   newMetrics(reg),
		jobs:  make(map[string]*jobRec),
		cache: make(map[string]string),
	}
	if err := os.MkdirAll(s.resultsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	dirty, err := s.replay()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	if dirty {
		s.mu.Lock()
		err = s.compactLocked()
		s.mu.Unlock()
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	s.buildRecovered()
	s.met.replayed.Add(int64(len(s.recovered)))
	s.met.jobs.Set(float64(len(s.jobs)))
	return s, nil
}

// replay reads the journal into the jobs map. It returns whether the
// on-disk journal carries garbage worth compacting away: evicted jobs,
// a torn tail, or records that never resolved to a usable job.
func (s *Store) replay() (dirty bool, err error) {
	b, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	ensure := func(id string) *jobRec {
		r, ok := s.jobs[id]
		if !ok {
			r = &jobRec{id: id}
			s.jobs[id] = r
			s.order = append(s.order, id)
		}
		return r
	}
	for off := 0; off < len(b); {
		nl := -1
		for i := off; i < len(b); i++ {
			if b[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// Torn tail: the process died mid-append. Everything before
			// this line is intact; compaction rewrites the file cleanly.
			dirty = true
			break
		}
		var rec record
		if err := json.Unmarshal(b[off:nl], &rec); err != nil {
			// A corrupt interior line ends the trustworthy prefix the
			// same way a torn tail does.
			dirty = true
			break
		}
		off = nl + 1
		switch rec.State {
		case StateSubmitted:
			r := ensure(rec.Job)
			r.spec, r.hash, r.submitted = rec.Spec, rec.Hash, rec.Time
			r.tenant, r.class = rec.Tenant, rec.Class
			r.node, r.internal = rec.Node, rec.Internal
		case StateRunning:
			ensure(rec.Job).started = rec.Time
		case StateCheckpoint:
			r := ensure(rec.Job)
			if r.ckpts == nil {
				r.ckpts = make(map[int]ckptRec)
			}
			r.ckpts[rec.Chunk] = ckptRec{t: rec.Time, data: rec.Data}
		case StateDone, StateFailed, StateCancelled:
			r := ensure(rec.Job)
			r.state, r.errMsg, r.finished, r.cached = rec.State, rec.Error, rec.Time, rec.Cached
			if rec.Cached && r.hash != "" {
				s.cache[r.hash] = r.id
			}
			if len(r.ckpts) > 0 {
				// The terminal result supersedes the campaign's checkpoints;
				// their records are garbage worth compacting away.
				r.ckpts = nil
				dirty = true
			}
		case StateEvicted:
			if r, ok := s.jobs[rec.Job]; ok {
				if r.hash != "" && s.cache[r.hash] == r.id {
					delete(s.cache, r.hash)
				}
				delete(s.jobs, rec.Job)
				dirty = true
			}
		}
	}
	// A job whose submitted record was lost (out-of-order append around a
	// crash) has no spec and cannot be re-run or served: drop it.
	live := s.order[:0]
	for _, id := range s.order {
		r, ok := s.jobs[id]
		if !ok {
			continue // evicted
		}
		if r.spec == nil {
			delete(s.jobs, id)
			dirty = true
			continue
		}
		live = append(live, id)
	}
	s.order = live
	// Orphan result snapshots (crash between an eviction's journal append
	// and its file delete) are garbage-collected here. A read-only replay
	// (ReadJournal) must not delete anything: the directory belongs to
	// another — possibly dead, possibly restarting — process.
	if s.readOnly {
		return dirty, nil
	}
	if entries, err := os.ReadDir(s.resultsDir()); err == nil {
		for _, e := range entries {
			id := e.Name()
			if len(id) > 5 && id[len(id)-5:] == ".json" {
				id = id[:len(id)-5]
			}
			if _, ok := s.jobs[id]; !ok {
				_ = os.Remove(filepath.Join(s.resultsDir(), e.Name()))
			}
		}
	}
	return dirty, nil
}

// buildRecovered classifies every replayed job.
func (s *Store) buildRecovered() {
	for _, id := range s.order {
		r := s.jobs[id]
		rj := RecoveredJob{
			ID: r.id, Spec: r.spec, Hash: r.hash,
			Tenant: r.tenant, Class: r.class,
			Node: r.node, Internal: r.internal,
			Submitted: r.submitted, Started: r.started, Finished: r.finished,
			Error: r.errMsg,
		}
		switch {
		case r.terminal():
			rj.State = r.state
		case !r.started.IsZero():
			rj.State = StateInterrupted
		default:
			rj.State = StateQueued
		}
		if b, err := os.ReadFile(s.resultPath(r.id)); err == nil {
			rj.Result = b
		}
		for _, c := range r.sortedChunks() {
			rj.Checkpoints = append(rj.Checkpoints, CheckpointRec{Chunk: c, Data: r.ckpts[c].data})
		}
		s.recovered = append(s.recovered, rj)
	}
}

// Recovered returns the jobs reconstructed at Open, in submit order.
func (s *Store) Recovered() []RecoveredJob { return s.recovered }

// ReadJournal replays the journal rooted at dir without opening it for
// writing, compacting it, or garbage-collecting anything — a pure read.
// This is the fleet failover path: a surviving node inspects a dead
// peer's (shared or handed-off) data dir to adopt its unfinished jobs
// with their checkpoints, while the directory stays byte-identical in
// case the owner comes back. A missing journal returns no jobs and no
// error, exactly like Open on an empty dir.
func ReadJournal(dir string) ([]RecoveredJob, error) {
	s := &Store{
		dir:      dir,
		met:      newMetrics(nil),
		readOnly: true,
		jobs:     make(map[string]*jobRec),
		cache:    make(map[string]string),
	}
	if _, err := s.replay(); err != nil {
		return nil, err
	}
	s.buildRecovered()
	return s.recovered, nil
}

// Jobs returns the number of live (non-evicted) jobs in the journal.
func (s *Store) Jobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// appendLocked writes one journal record and fsyncs per Options.
func (s *Store) appendLocked(rec record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: appending journal: %w", err)
	}
	s.met.appends.Inc()
	if !s.opts.NoFsync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync journal: %w", err)
		}
		s.met.fsyncs.Inc()
	}
	return nil
}

// JobSubmitted journals a job's admission, including the tenant and
// scheduling class it was admitted under (zero meta = single-tenant).
func (s *Store) JobSubmitted(id string, spec *jobspec.Spec, hash string, meta SubmitMeta, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		s.order = append(s.order, id)
	}
	r := s.jobs[id]
	if r == nil {
		r = &jobRec{id: id}
		s.jobs[id] = r
	}
	r.spec, r.hash, r.submitted = spec, hash, t
	r.tenant, r.class = meta.Tenant, meta.Class
	r.node, r.internal = meta.Node, meta.Internal
	s.met.jobs.Set(float64(len(s.jobs)))
	return s.appendLocked(record{Time: t, Job: id, State: StateSubmitted, Spec: spec, Hash: hash,
		Tenant: meta.Tenant, Class: meta.Class, Node: meta.Node, Internal: meta.Internal})
}

// JobRunning journals a job's queued → running transition.
func (s *Store) JobRunning(id string, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.jobs[id]; ok {
		r.started = t
	}
	return s.appendLocked(record{Time: t, Job: id, State: StateRunning})
}

// JobCheckpoint journals one completed campaign chunk of a running job:
// the durable unit of resume. A crash after this append loses at most
// the chunk that was in flight — replay hands the payloads back on the
// job's RecoveredJob.Checkpoints.
func (s *Store) JobCheckpoint(id string, chunk int, data []byte, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.jobs[id]; ok {
		if r.ckpts == nil {
			r.ckpts = make(map[int]ckptRec)
		}
		r.ckpts[chunk] = ckptRec{t: t, data: json.RawMessage(data)}
	}
	s.met.checkpoints.Inc()
	return s.appendLocked(record{Time: t, Job: id, State: StateCheckpoint, Chunk: chunk, Data: data})
}

// JobTerminal journals a job's terminal transition. The result snapshot
// (nil = none) is written and synced to its own file before the journal
// record, so a crash between the two leaves an interrupted job with its
// partial result intact rather than a terminal record pointing at
// nothing. cacheable enters the result into the spec-hash cache — the
// caller decides, because only it knows whether the result is the full
// deterministic computation (never cache partials or no_cache runs).
func (s *Store) JobTerminal(id, state, errMsg string, result []byte, cacheable bool, t time.Time) error {
	if result != nil {
		if err := writeFileSync(s.resultPath(id), result); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok {
		r = &jobRec{id: id}
		s.jobs[id] = r
		s.order = append(s.order, id)
	}
	r.state, r.errMsg, r.finished = state, errMsg, t
	// The terminal result supersedes any campaign checkpoints; dropping
	// them here keeps compaction from rewriting dead progress records.
	r.ckpts = nil
	cached := false
	if cacheable && state == StateDone && r.hash != "" && result != nil {
		s.cache[r.hash] = id
		cached = true
	}
	r.cached = cached
	return s.appendLocked(record{Time: t, Job: id, State: state, Error: errMsg, Cached: cached})
}

// CachedResult looks up a terminal result by canonical spec hash and
// returns the owning job's id plus the snapshot bytes, exactly as they
// were persisted (byte-identical across restarts). Every call counts a
// hit or a miss.
func (s *Store) CachedResult(hash string) (id string, result []byte, ok bool) {
	s.mu.Lock()
	id, ok = s.cache[hash]
	s.mu.Unlock()
	if !ok {
		s.met.cacheMisses.Inc()
		return "", nil, false
	}
	b, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		s.met.cacheMisses.Inc()
		return "", nil, false
	}
	s.met.cacheHits.Inc()
	return id, b, true
}

// Evict removes jobs from the store: one journal tombstone per job (so
// a crash mid-eviction loses nothing), result snapshots deleted, cache
// entries dropped. When CompactEvery evictions have accumulated the
// journal is rewritten without the dead records, which is what keeps
// the disk footprint bounded by the retention policy rather than by the
// server's lifetime traffic. Non-terminal jobs are never evicted, no
// matter what the caller passes: a resumable campaign's checkpoints
// must survive every count- and age-based retention pass until the job
// reaches a verdict.
func (s *Store) Evict(ids []string, t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		r, ok := s.jobs[id]
		if !ok {
			continue
		}
		if !r.terminal() {
			continue
		}
		if err := s.appendLocked(record{Time: t, Job: id, State: StateEvicted}); err != nil {
			return err
		}
		_ = os.Remove(s.resultPath(id))
		if r.hash != "" && s.cache[r.hash] == id {
			delete(s.cache, r.hash)
		}
		delete(s.jobs, id)
		s.evictions++
		s.met.evictions.Inc()
	}
	live := s.order[:0]
	for _, id := range s.order {
		if _, ok := s.jobs[id]; ok {
			live = append(live, id)
		}
	}
	s.order = live
	s.met.jobs.Set(float64(len(s.jobs)))
	if s.evictions >= s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the journal from the in-memory state: live
// jobs' records in submit order, no tombstones, no torn tail. The new
// journal is synced and atomically renamed over the old one.
func (s *Store) compactLocked() error {
	tmp := s.journalPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, id := range s.order {
		r := s.jobs[id]
		recs := []record{{Time: r.submitted, Job: id, State: StateSubmitted, Spec: r.spec, Hash: r.hash,
			Tenant: r.tenant, Class: r.class, Node: r.node, Internal: r.internal}}
		if !r.started.IsZero() {
			recs = append(recs, record{Time: r.started, Job: id, State: StateRunning})
		}
		if r.terminal() {
			recs = append(recs, record{Time: r.finished, Job: id, State: r.state, Error: r.errMsg, Cached: r.cached})
		} else {
			// A live (resumable) job keeps its campaign checkpoints across
			// compaction — dropping them here would silently cost the re-work
			// a resume was supposed to save.
			for _, c := range r.sortedChunks() {
				cp := r.ckpts[c]
				recs = append(recs, record{Time: cp.t, Job: id, State: StateCheckpoint, Chunk: c, Data: cp.data})
			}
		}
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				f.Close()
				return fmt.Errorf("store: compact: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.journalPath()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if s.f != nil {
		_ = s.f.Close()
	}
	nf, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: reopening journal: %w", err)
	}
	s.f = nf
	s.evictions = 0
	s.met.compactions.Inc()
	return nil
}

// Close syncs and closes the journal. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// writeFileSync writes b to path via a synced temp file and an atomic
// rename, so a reader never observes a half-written snapshot.
func writeFileSync(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
