package store

import "repro/internal/obs"

// metrics holds the store's instruments, folded into the same registry
// the serve and simulation layers publish to. All instruments are obs
// nil-receiver-safe, so a store opened without a registry pays one nil
// check per event.
//
// Metrics registered:
//
//	store_journal_appends_total  count  journal records appended
//	store_journal_fsyncs_total   count  fsyncs issued on the journal
//	store_replayed_jobs_total    count  jobs reconstructed at Open
//	store_cache_hits_total       count  result-cache lookups answered from disk
//	store_cache_misses_total     count  result-cache lookups that missed
//	store_evictions_total        count  jobs evicted by the retention policy
//	store_compactions_total      count  journal rewrites triggered by evictions
//	store_checkpoints_total      count  campaign chunk checkpoints journaled
//	store_jobs                   gauge  live (non-evicted) jobs in the journal
type metrics struct {
	appends     *obs.Counter
	fsyncs      *obs.Counter
	replayed    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	evictions   *obs.Counter
	compactions *obs.Counter
	checkpoints *obs.Counter
	jobs        *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		appends:     reg.Counter("store_journal_appends_total", "1", "journal records appended"),
		fsyncs:      reg.Counter("store_journal_fsyncs_total", "1", "fsyncs issued on the journal"),
		replayed:    reg.Counter("store_replayed_jobs_total", "1", "jobs reconstructed from the journal at open"),
		cacheHits:   reg.Counter("store_cache_hits_total", "1", "result-cache lookups answered from disk"),
		cacheMisses: reg.Counter("store_cache_misses_total", "1", "result-cache lookups that missed"),
		evictions:   reg.Counter("store_evictions_total", "1", "jobs evicted by the retention policy"),
		compactions: reg.Counter("store_compactions_total", "1", "journal rewrites triggered by evictions"),
		checkpoints: reg.Counter("store_checkpoints_total", "1", "campaign chunk checkpoints journaled"),
		jobs:        reg.Gauge("store_jobs", "1", "live jobs in the journal"),
	}
}
