package figures

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aging"
	"repro/internal/device"
	"repro/internal/report"
)

// ScalingRow is one technology node's entry in the scaling study.
type ScalingRow struct {
	Node  string
	ToxNM float64
	VDD   float64
	// SigmaVTMinSize is σ(ΔVT) of a minimum-size pair (W = 2·Lmin,
	// L = Lmin) in volts — the matching a dense digital/SRAM design
	// actually gets.
	SigmaVTMinSize float64
	// NBTIShift10y is the DC NBTI ΔVT after 10 years at 400 K under the
	// nominal vertical field VDD/Tox, in volts.
	NBTIShift10y float64
	// TDDBEtaUseYears is the Weibull 63 % breakdown time of a
	// minimum-size gate at use conditions, in years.
	TDDBEtaUseYears float64
	// RelNBTIBudget is NBTIShift10y normalised to the threshold voltage —
	// the fraction of the headroom aging consumes.
	RelNBTIBudget float64
}

// ScalingStudyResult aggregates the per-node rows.
type ScalingStudyResult struct {
	Rows []ScalingRow
}

// ScalingStudy walks every built-in technology node (oldest first) and
// evaluates the paper's headline quantities: how mismatch of minimum-size
// devices, NBTI wear-out and oxide lifetime evolve with scaling. It is the
// repository's condensation of the paper's overall thesis — each mechanism
// worsens as CMOS scales into the nanometer regime.
func ScalingStudy() (*ScalingStudyResult, string) {
	nbti := aging.DefaultNBTI()
	tddb := aging.DefaultTDDB()
	res := &ScalingStudyResult{}
	const tenYears = 10 * Year
	for _, tech := range device.SortedByTox() {
		w, l := 2*tech.Lmin, tech.Lmin
		eox := tech.VDD / tech.Tox()
		row := ScalingRow{
			Node:           tech.Name,
			ToxNM:          tech.ToxNM,
			VDD:            tech.VDD,
			SigmaVTMinSize: tech.SigmaVT(w, l, 0),
			NBTIShift10y:   nbti.ShiftDC(eox, 400, tenYears),
		}
		row.RelNBTIBudget = row.NBTIShift10y / tech.VT0P
		area := w * l
		row.TDDBEtaUseYears = tddb.Eta(eox, 400, area, tech.ToxNM) / Year
		res.Rows = append(res.Rows, row)
	}

	var b strings.Builder
	b.WriteString("Scaling study — why yield and reliability are *emerging* challenges\n")
	t := report.NewTable("",
		"node", "Tox [nm]", "VDD", "σΔVT min-size", "NBTI ΔVT @10y/400K", "ΔVT/VT0", "TDDB η(use)")
	for _, r := range res.Rows {
		t.AddRow(r.Node,
			fmt.Sprintf("%.1f", r.ToxNM),
			fmt.Sprintf("%.1f", r.VDD),
			report.SI(r.SigmaVTMinSize, "V"),
			report.SI(r.NBTIShift10y, "V"),
			fmt.Sprintf("%.0f%%", 100*r.RelNBTIBudget),
			report.Years(r.TDDBEtaUseYears*Year))
	}
	b.WriteString(t.String())
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	fmt.Fprintf(&b, "from %s to %s: min-size mismatch ×%.1f, NBTI budget share ×%.1f, oxide η ÷%.0f\n",
		first.Node, last.Node,
		last.SigmaVTMinSize/first.SigmaVTMinSize,
		last.RelNBTIBudget/first.RelNBTIBudget,
		first.TDDBEtaUseYears/math.Max(last.TDDBEtaUseYears, 1e-30))
	return res, b.String()
}
