package figures

import (
	"math"
	"strings"
	"testing"
)

func TestFig1TrendShape(t *testing.T) {
	res, txt := Fig1(20000, 1)
	if !strings.Contains(txt, "Fig. 1") {
		t.Error("missing title")
	}
	if res.MaxRelErrAbove10nm > 0.05 {
		t.Errorf("benchmark deviates %.1f%% above 10 nm, should hold", 100*res.MaxRelErrAbove10nm)
	}
	if res.MinRatioBelow10nm < 1.05 {
		t.Errorf("below 10 nm extracted AVT should sit above the benchmark (ratio %.3f)", res.MinRatioBelow10nm)
	}
	// X axis must be decreasing Tox (scaling direction).
	for i := 1; i < len(res.ToxNM); i++ {
		if res.ToxNM[i] >= res.ToxNM[i-1] {
			t.Fatal("Tox axis not sorted")
		}
	}
}

func TestFig2DegradedBelowFresh(t *testing.T) {
	res, txt := Fig2()
	if !strings.Contains(txt, "saturation current drop") {
		t.Error("missing summary line")
	}
	if res.SatCurrentDropPct < 2 || res.SatCurrentDropPct > 60 {
		t.Errorf("saturation current drop %.1f%% outside plausible band", res.SatCurrentDropPct)
	}
	// Degraded curve below fresh at every nonzero bias of the top step.
	last := len(res.VGSSteps) - 1
	for i := range res.VDS {
		if res.VDS[i] == 0 {
			continue
		}
		if res.Aged[last][i] >= res.Fresh[last][i] {
			t.Fatalf("aged current above fresh at VDS=%g", res.VDS[i])
		}
	}
}

func TestFig3BiasPoint(t *testing.T) {
	res, txt := Fig3()
	if res.IOutQuiet <= 1e-6 || res.IOutQuiet >= 1e-3 {
		t.Errorf("quiet output current %g implausible", res.IOutQuiet)
	}
	if res.VGate <= 0.3 || res.VGate >= 1.2 {
		t.Errorf("gate bias %g implausible", res.VGate)
	}
	if !strings.Contains(txt, "IOUT") {
		t.Error("missing table")
	}
}

func TestFig4SmallGrid(t *testing.T) {
	res, txt := Fig4([]float64{0.15, 0.4}, []float64{5e6, 200e6})
	if res.WorstShift == 0 {
		t.Fatal("no EMI shift detected")
	}
	if !res.MonotoneInAmplitude {
		t.Error("shift should grow with amplitude at every frequency")
	}
	if res.WorstAmpl != 0.4 {
		t.Errorf("worst shift at %g V, expected the largest amplitude", res.WorstAmpl)
	}
	if !strings.Contains(txt, "worst shift") {
		t.Error("missing summary")
	}
}

func TestFig5AreaRatio(t *testing.T) {
	res, txt := Fig5(40, 3)
	if res.Study.AnalogAreaRatio <= 0.005 || res.Study.AnalogAreaRatio > 0.3 {
		t.Errorf("area ratio %.3f outside plausible band around the paper's 6%%", res.Study.AnalogAreaRatio)
	}
	if res.ExampleINLAfter >= res.ExampleINLBefore {
		t.Error("SSPA did not improve the example instance")
	}
	if res.YieldCalibrated.Yield <= res.YieldIntrinsic.Yield {
		t.Error("calibration should raise yield at the calibrated design sigma")
	}
	if !strings.Contains(txt, "area ratio") {
		t.Error("missing summary")
	}
}

func TestFig6AdaptiveWins(t *testing.T) {
	res, txt := Fig6(30, 10)
	if !(res.AdaptiveTTF > res.StaticTTF) {
		t.Errorf("adaptive TTF %g must exceed static %g", res.AdaptiveTTF, res.StaticTTF)
	}
	if len(res.KnobTrace) != len(res.Times) {
		t.Error("knob trace length mismatch")
	}
	moved := false
	for i := 1; i < len(res.KnobTrace); i++ {
		if res.KnobTrace[i] != res.KnobTrace[0] {
			moved = true
		}
	}
	if !moved {
		t.Error("knob never moved")
	}
	if !strings.Contains(txt, "time to failure") {
		t.Error("missing summary")
	}
}

func TestEq1PelgromFit(t *testing.T) {
	res, _ := Eq1(20000, 5)
	if res.FitSlopeR2 < 0.99 {
		t.Errorf("Pelgrom fit r² = %g", res.FitSlopeR2)
	}
	if res.DistanceGrowth <= 1.0 {
		t.Errorf("distance term missing: growth %g", res.DistanceGrowth)
	}
}

func TestEq2Exponent(t *testing.T) {
	res, _ := Eq2()
	if math.Abs(res.FittedExponent-0.45) > 0.01 {
		t.Errorf("HCI exponent %g, want ~0.45", res.FittedExponent)
	}
	if res.EmAcceleration < 10 {
		t.Errorf("lateral-field acceleration ×%g too weak", res.EmAcceleration)
	}
}

func TestEq3ShapeAndRecovery(t *testing.T) {
	res, _ := Eq3()
	if math.Abs(res.FittedExponent-0.2) > 0.01 {
		t.Errorf("NBTI exponent %g, want ~0.2", res.FittedExponent)
	}
	if res.TempAcceleration <= 1 {
		t.Error("temperature acceleration missing")
	}
	// Relaxation trace falls monotonically and stays above the permanent
	// fraction.
	for i := 1; i < len(res.RelaxTrace); i++ {
		if res.RelaxTrace[i] > res.RelaxTrace[i-1]+1e-12 {
			t.Fatal("relaxation not monotone")
		}
	}
	if last := res.RelaxTrace[len(res.RelaxTrace)-1]; last < 0.4 || last > 0.8 {
		t.Errorf("long-relaxation residual %g should approach the permanent fraction", last)
	}
	if res.ACFraction <= 0.2 || res.ACFraction >= 1 {
		t.Errorf("AC/DC fraction %g implausible", res.ACFraction)
	}
}

func TestEq4BlackShape(t *testing.T) {
	res, _ := Eq4()
	if math.Abs(res.FittedExponent-2) > 0.01 {
		t.Errorf("current exponent %g, want 2", res.FittedExponent)
	}
	if res.TempRatio <= 1 {
		t.Error("temperature must shorten lifetime")
	}
	if !res.BlechImmortal {
		t.Error("short wire should be Blech-immortal")
	}
	for i := 1; i < len(res.MTTF); i++ {
		if res.MTTF[i] >= res.MTTF[i-1] {
			t.Fatal("MTTF must fall with J")
		}
	}
}

func TestScalingStudyTrends(t *testing.T) {
	res, txt := ScalingStudy()
	if len(res.Rows) < 8 {
		t.Fatalf("only %d nodes", len(res.Rows))
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if last.SigmaVTMinSize < 3*first.SigmaVTMinSize {
		t.Errorf("min-size mismatch should explode with scaling: %g -> %g",
			first.SigmaVTMinSize, last.SigmaVTMinSize)
	}
	if last.NBTIShift10y <= first.NBTIShift10y {
		t.Errorf("NBTI should worsen with scaling: %g -> %g",
			first.NBTIShift10y, last.NBTIShift10y)
	}
	if last.RelNBTIBudget < 2*first.RelNBTIBudget {
		t.Errorf("NBTI headroom share should grow with scaling: %g -> %g",
			first.RelNBTIBudget, last.RelNBTIBudget)
	}
	if last.TDDBEtaUseYears >= first.TDDBEtaUseYears {
		t.Errorf("oxide lifetime should shrink with scaling: %g -> %g yr",
			first.TDDBEtaUseYears, last.TDDBEtaUseYears)
	}
	if !strings.Contains(txt, "Scaling study") {
		t.Error("missing title")
	}
}
