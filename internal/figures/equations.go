package figures

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aging"
	"repro/internal/device"
	"repro/internal/em"
	"repro/internal/mathx"
	"repro/internal/report"
	"repro/internal/variation"
)

// Eq1Result verifies the Pelgrom law (Eq. 1) by MC extraction.
type Eq1Result struct {
	// InvSqrtArea is 1/√(W·L) in 1/m.
	InvSqrtArea []float64
	// SigmaVT is the extracted σ(ΔVT) in volts at zero distance.
	SigmaVT []float64
	// FitSlopeR2 is the r² of the linear fit σ vs 1/√area (should be ~1).
	FitSlopeR2 float64
	// FitAVT is the fitted AVT in V·m.
	FitAVT float64
	// DistanceGrowth is σ(50µm apart)/σ(0) for the smallest area (>1:
	// the S·D term of Eq. 1 at work).
	DistanceGrowth float64
}

// Eq1 extracts the Pelgrom area law on the 90 nm node.
func Eq1(nPairs int, seed uint64) (*Eq1Result, string) {
	tech := device.MustTech("90nm")
	res := &Eq1Result{}
	rng := mathx.NewRNG(seed)
	geoms := []struct{ w, l float64 }{
		{0.5e-6, 0.1e-6}, {1e-6, 0.2e-6}, {2e-6, 0.5e-6}, {4e-6, 1e-6}, {8e-6, 2e-6},
	}
	for _, g := range geoms {
		var run mathx.Running
		for i := 0; i < nPairs; i++ {
			run.Add(variation.SamplePairDeltaVT(tech, g.w, g.l, 0, rng))
		}
		res.InvSqrtArea = append(res.InvSqrtArea, 1/math.Sqrt(g.w*g.l))
		res.SigmaVT = append(res.SigmaVT, run.StdDev())
	}
	_, slope, r2 := mathx.LinFit(res.InvSqrtArea, res.SigmaVT)
	res.FitSlopeR2 = r2
	res.FitAVT = slope

	// Distance term: same small geometry, far apart.
	var near, far mathx.Running
	for i := 0; i < nPairs; i++ {
		near.Add(variation.SamplePairDeltaVT(tech, 0.5e-6, 0.1e-6, 0, rng))
		far.Add(variation.SamplePairDeltaVT(tech, 0.5e-6, 0.1e-6, 2e-3, rng))
	}
	res.DistanceGrowth = far.StdDev() / near.StdDev()

	var b strings.Builder
	b.WriteString("Eq. 1 — Pelgrom mismatch law σ²(ΔVT) = AVT²/(WL) + SVT²·D²\n")
	t := report.NewTable("", "1/sqrt(WL) [1/m]", "σ(ΔVT) [V]")
	for i := range res.SigmaVT {
		t.AddRowf(res.InvSqrtArea[i], res.SigmaVT[i])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "fit: AVT = %.3g V·m (true %.3g), r² = %.5f\n", res.FitAVT, tech.AVT, res.FitSlopeR2)
	fmt.Fprintf(&b, "σ growth at D = 2 mm: ×%.3f\n", res.DistanceGrowth)
	return res, b.String()
}

// Eq2Result verifies the HCI law (Eq. 2).
type Eq2Result struct {
	Times  []float64
	Shifts []float64
	// FittedExponent from the t^n regression.
	FittedExponent float64
	// EmAcceleration is shift(high Em)/shift(low Em) at fixed t.
	EmAcceleration float64
}

// Eq2 sweeps HCI stress time and lateral field.
func Eq2() (*Eq2Result, string) {
	m := aging.DefaultHCI()
	res := &Eq2Result{Times: mathx.Logspace(10, 3e8, 12)}
	for _, t := range res.Times {
		res.Shifts = append(res.Shifts, m.Shift(5e-3, 5e8, 8e7, 330, t, false))
	}
	_, n, _ := mathx.PowerFit(res.Times, res.Shifts)
	res.FittedExponent = n
	res.EmAcceleration = m.Shift(5e-3, 5e8, 9e7, 330, 1e6, false) /
		m.Shift(5e-3, 5e8, 6e7, 330, 1e6, false)

	var b strings.Builder
	b.WriteString("Eq. 2 — HCI: ΔVT ∝ Qi·exp(Eox/E0)·exp(−Φit/λEm)·t^n\n")
	b.WriteString(report.Series("", "t [s]", "ΔVT [V]", res.Times, res.Shifts))
	fmt.Fprintf(&b, "fitted exponent n = %.3f (model %.3f)\n", res.FittedExponent, m.N)
	fmt.Fprintf(&b, "Em acceleration 6→9 MV/m(lateral): ×%.1f\n", res.EmAcceleration)
	return res, b.String()
}

// Eq3Result verifies the NBTI law (Eq. 3) with recovery.
type Eq3Result struct {
	Times  []float64
	Shifts []float64
	// FittedExponent from t^n regression.
	FittedExponent float64
	// TempAcceleration is shift(400K)/shift(300K) at fixed t.
	TempAcceleration float64
	// RelaxTrace is the post-stress relaxation: remaining fraction at
	// ξ = tRelax/tStress in RelaxXi.
	RelaxXi, RelaxTrace []float64
	// ACFraction is ΔVT(50% duty)/ΔVT(DC).
	ACFraction float64
	// MSMDelays and MSMExponents show the measurement artefact the paper
	// warns about: the apparent power-law exponent extracted with
	// different instrument delays.
	MSMDelays, MSMExponents []float64
}

// Eq3 sweeps NBTI stress, temperature, relaxation and duty factor.
func Eq3() (*Eq3Result, string) {
	m := aging.DefaultNBTI()
	const eox, temp = 5e8, 350
	res := &Eq3Result{Times: mathx.Logspace(10, 3e8, 12)}
	for _, t := range res.Times {
		res.Shifts = append(res.Shifts, m.ShiftDC(eox, temp, t))
	}
	_, n, _ := mathx.PowerFit(res.Times, res.Shifts)
	res.FittedExponent = n
	res.TempAcceleration = m.ShiftDC(eox, 400, 1e7) / m.ShiftDC(eox, 300, 1e7)

	const tStress = 1e5
	full := m.ShiftDC(eox, temp, tStress)
	for _, xi := range mathx.Logspace(1e-6, 1e4, 11) {
		res.RelaxXi = append(res.RelaxXi, xi)
		res.RelaxTrace = append(res.RelaxTrace,
			m.ShiftAfterRelax(eox, temp, tStress, xi*tStress)/full)
	}
	res.ACFraction = m.ShiftAC(eox, temp, 1e7, 0.5) / m.ShiftDC(eox, temp, 1e7)

	// Measurement-delay artefact (the paper: relaxation "greatly
	// complicates the evaluation of NBTI").
	res.MSMDelays = []float64{1e-6, 1e-3, 1, 100}
	exps, err := aging.ExponentVsDelay(m, eox, temp, mathx.Logspace(1, 1e6, 12), res.MSMDelays)
	if err != nil {
		panic(fmt.Sprintf("figures: MSM sweep failed: %v", err))
	}
	res.MSMExponents = exps

	var b strings.Builder
	b.WriteString("Eq. 3 — NBTI: ΔVT ∝ exp(Eox/E0)·exp(−Ea/kT)·t^n, with recovery\n")
	b.WriteString(report.Series("stress", "t [s]", "ΔVT [V]", res.Times, res.Shifts))
	fmt.Fprintf(&b, "fitted exponent n = %.3f (model %.3f)\n", res.FittedExponent, m.N)
	fmt.Fprintf(&b, "300→400 K acceleration: ×%.1f\n", res.TempAcceleration)
	b.WriteString(report.Series("relaxation", "ξ = tr/ts", "remaining fraction", res.RelaxXi, res.RelaxTrace))
	fmt.Fprintf(&b, "AC(50%% duty)/DC shift: %.2f\n", res.ACFraction)
	b.WriteString(report.Series("measure-stress-measure artefact",
		"measurement delay [s]", "apparent exponent n", res.MSMDelays, res.MSMExponents))
	return res, b.String()
}

// Eq4Result verifies Black's law (Eq. 4).
type Eq4Result struct {
	J    []float64
	MTTF []float64
	// FittedExponent of MTTF ∝ J^-n.
	FittedExponent float64
	// TempRatio is MTTF(350K)/MTTF(400K).
	TempRatio float64
	// BlechImmortal reports whether the short-wire check returned +Inf.
	BlechImmortal bool
}

// Eq4 sweeps current density and temperature on a reference wire.
func Eq4() (*Eq4Result, string) {
	m := em.DefaultBlack()
	res := &Eq4Result{}
	w := &em.Wire{Name: "ref", Width: 0.5e-6, Thickness: 0.2e-6, Length: 1e-2}
	for _, j := range mathx.Logspace(1e9, 2e10, 10) {
		w.Current = j * w.Area()
		res.J = append(res.J, j)
		res.MTTF = append(res.MTTF, m.MTTF(w, 378))
	}
	c, n, _ := mathx.PowerFit(res.J, res.MTTF)
	_ = c
	res.FittedExponent = -n
	w.Current = 5e9 * w.Area()
	res.TempRatio = m.MTTF(w, 350) / m.MTTF(w, 400)
	short := &em.Wire{Name: "short", Width: 0.5e-6, Thickness: 0.2e-6, Length: 10e-6, Current: 5e9 * 1e-13}
	res.BlechImmortal = math.IsInf(m.MTTF(short, 378), 1)

	var b strings.Builder
	b.WriteString("Eq. 4 — Electromigration: MTTF = A/J²·exp(Ea/kT), Blech immunity\n")
	b.WriteString(report.Series("", "J [A/m²]", "MTTF [s]", res.J, res.MTTF))
	fmt.Fprintf(&b, "fitted current exponent: %.2f (Black: %g)\n", res.FittedExponent, m.N)
	fmt.Fprintf(&b, "MTTF(350K)/MTTF(400K): ×%.1f\n", res.TempRatio)
	fmt.Fprintf(&b, "10 µm wire Blech-immortal: %v\n", res.BlechImmortal)
	return res, b.String()
}
