// Package figures regenerates every evaluation artefact of the paper —
// Figures 1-6 and Equations 1-4 — as text series plus structured results
// that the benchmark harness asserts on. Each generator is deterministic
// for a fixed seed.
package figures

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aging"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/report"
	"repro/internal/variation"
)

// Year is one year in seconds.
const Year = 365.25 * 24 * 3600

// Fig1Result is the mismatch-trend reproduction: AVT versus oxide
// thickness, Monte-Carlo-extracted from simulated device pairs, against
// Tuinhout's 1 mV·µm/nm benchmark.
type Fig1Result struct {
	ToxNM []float64
	// ExtractedAVT is the MC-extracted coefficient in mV·µm.
	ExtractedAVT []float64
	// Benchmark is the 1 mV·µm/nm line.
	Benchmark []float64
	// MaxRelErrAbove10nm is the worst relative deviation of the extraction
	// from the benchmark for Tox ≥ 10 nm (should be small: the rule holds).
	MaxRelErrAbove10nm float64
	// MinRatioBelow10nm is the minimum extracted/benchmark ratio below
	// 10 nm (should exceed 1: matching improves more slowly than the rule).
	MinRatioBelow10nm float64
}

// Fig1 extracts AVT per technology node by fabricating nPairs matched
// pairs in Monte Carlo and measuring σ(ΔVT)·√(W·L).
func Fig1(nPairs int, seed uint64) (*Fig1Result, string) {
	res := &Fig1Result{MinRatioBelow10nm: math.Inf(1)}
	w, l := 10e-6, 1e-6 // large devices, as in the Tuinhout measurements
	rng := mathx.NewRNG(seed)
	for _, tech := range device.SortedByTox() {
		var run mathx.Running
		for i := 0; i < nPairs; i++ {
			run.Add(variation.SamplePairDeltaVT(&tech, w, l, 0, rng))
		}
		avt := run.StdDev() * math.Sqrt(w*l) // V·m
		avtMVUM := avt * 1e9                 // mV·µm
		bench := device.TuinhoutBenchmarkAVT(tech.ToxNM)
		res.ToxNM = append(res.ToxNM, tech.ToxNM)
		res.ExtractedAVT = append(res.ExtractedAVT, avtMVUM)
		res.Benchmark = append(res.Benchmark, bench)
		if tech.ToxNM >= 10 {
			if rel := math.Abs(avtMVUM-bench) / bench; rel > res.MaxRelErrAbove10nm {
				res.MaxRelErrAbove10nm = rel
			}
		} else if ratio := avtMVUM / bench; ratio < res.MinRatioBelow10nm {
			res.MinRatioBelow10nm = ratio
		}
	}
	t := report.NewTable("Fig. 1 — AVT vs gate oxide thickness (extracted from MC device pairs)",
		"Tox [nm]", "AVT extracted [mV·µm]", "1 mV·µm/nm benchmark")
	for i := range res.ToxNM {
		t.AddRowf(res.ToxNM[i], res.ExtractedAVT[i], res.Benchmark[i])
	}
	return res, t.String()
}

// Fig2Result is the fresh vs degraded I-V reproduction.
type Fig2Result struct {
	VDS []float64
	// Fresh[g] and Aged[g] are the drain-current curves per VGS step.
	VGSSteps    []float64
	Fresh, Aged [][]float64
	// SatCurrentDropPct is the relative saturation-current reduction at
	// the highest VGS step.
	SatCurrentDropPct float64
}

// Fig2 produces the I-V characteristics of a 90 nm nMOS before and after
// ten years of worst-case stress (NBTI+HCI composite damage).
func Fig2() (*Fig2Result, string) {
	tech := device.MustTech("90nm")
	fresh := device.NewMosfet(tech.NMOSParams(1e-6, 90e-9, 300))
	aged := device.NewMosfet(tech.NMOSParams(1e-6, 90e-9, 300))

	// Accumulate damage from both mechanisms under DC worst-case stress.
	models := aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}
	ager := aging.NewDeviceAger(models, aged, mathx.NewRNG(1))
	ager.Step(aging.Stress{Vgs: tech.VDD, Vds: tech.VDD, Duty: 1, TempK: 400}, 10*Year)

	res := &Fig2Result{
		VDS:      mathx.Linspace(0, tech.VDD, 23),
		VGSSteps: []float64{0.6, 0.8, 1.0, tech.VDD},
	}
	for _, vgs := range res.VGSSteps {
		var f, a []float64
		for _, vds := range res.VDS {
			f = append(f, fresh.Eval(vgs, vds, 0).ID)
			a = append(a, aged.Eval(vgs, vds, 0).ID)
		}
		res.Fresh = append(res.Fresh, f)
		res.Aged = append(res.Aged, a)
	}
	nf := res.Fresh[len(res.Fresh)-1]
	na := res.Aged[len(res.Aged)-1]
	res.SatCurrentDropPct = 100 * (nf[len(nf)-1] - na[len(na)-1]) / nf[len(nf)-1]

	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — IDS-VDS of a fresh vs degraded 90nm nMOS (10y worst-case stress)\n")
	fmt.Fprintf(&b, "damage: ΔVT=%s, mobility×%.3f\n",
		report.SI(aged.Damage.DeltaVT, "V"), aged.Damage.MobilityFactor)
	t := report.NewTable("", "VDS [V]", "fresh ID [A] @VGSmax", "aged ID [A] @VGSmax")
	last := len(res.VGSSteps) - 1
	for i, v := range res.VDS {
		t.AddRowf(v, res.Fresh[last][i], res.Aged[last][i])
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "saturation current drop: %.1f%%\n", res.SatCurrentDropPct)
	return res, b.String()
}
