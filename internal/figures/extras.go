package figures

import (
	"fmt"
	"strings"

	"repro/internal/aging"
	"repro/internal/device"
	"repro/internal/digital"
	"repro/internal/emc"
	"repro/internal/report"
)

// RingResult is the digital-slowdown artefact.
type RingResult struct {
	*digital.DegradationResult
}

// Ring ages a 65 nm five-stage ring oscillator over a ten-year 400 K
// mission and reports the frequency degradation — the "slower circuits"
// claim of §2-3.
func Ring() (*RingResult, string) {
	tech := device.MustTech("65nm")
	ro, err := digital.BuildRingOscillator(tech, 5, digital.DefaultInverter(tech), 2e-15)
	if err != nil {
		panic(fmt.Sprintf("figures: ring build failed: %v", err))
	}
	res, err := digital.AgeRing(ro, 10*Year, 400,
		aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 7)
	if err != nil {
		panic(fmt.Sprintf("figures: ring aging failed: %v", err))
	}
	txt := fmt.Sprintf(
		"Ring-oscillator degradation: fresh %.3g GHz -> aged %.3g GHz (%.1f%% slowdown, worst ΔVT %.0f mV)",
		res.FreshHz/1e9, res.AgedHz/1e9, res.SlowdownPct, res.WorstDeltaVT*1e3)
	return &RingResult{res}, txt
}

// ImmunityResult is the IEC-style immunity curve.
type ImmunityResult struct {
	Freqs      []float64
	Thresholds []float64
}

// Immunity bisects the EMI amplitude that produces a 0.5 µA output shift
// on the Fig. 3 reference, per frequency — the DPI immunity plot.
func Immunity() (*ImmunityResult, string) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	opts := emc.DefaultOptions(cr.RecordNodes()...)
	opts.SettleCycles, opts.MeasureCycles, opts.StepsPerCycle = 3, 5, 32
	s := &emc.ImmunitySearch{
		Source: cr.InjectName, Metric: cr.OutputCurrentMetric(),
		Opts: opts, AmplMax: 0.8, Tol: 0.08,
	}
	freqs := []float64{1e6, 10e6, 100e6}
	curve, err := s.ImmunityCurve(cr.Circuit, freqs, 0.5e-6)
	if err != nil {
		panic(fmt.Sprintf("figures: immunity curve failed: %v", err))
	}
	res := &ImmunityResult{Freqs: freqs, Thresholds: curve}
	var b strings.Builder
	b.WriteString("Immunity thresholds for a 0.5uA output shift (DPI-style)\n")
	t := report.NewTable("", "frequency", "threshold amplitude")
	for i := range freqs {
		t.AddRow(report.SI(freqs[i], "Hz"), report.SI(curve[i], "V"))
	}
	b.WriteString(t.String())
	return res, b.String()
}
