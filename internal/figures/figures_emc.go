package figures

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/emc"
	"repro/internal/report"
)

// Fig3Result is the current-reference testbench of Fig. 3: the quiet bias
// point with and without the gate filter capacitor.
type Fig3Result struct {
	// IOutQuiet is the undisturbed output current in amperes.
	IOutQuiet float64
	// VGate is the mirror gate bias.
	VGate float64
	// Elements lists the netlist contents.
	Elements []string
}

// Fig3 builds and solves the Fig. 3 circuit.
func Fig3() (*Fig3Result, string) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	sol, err := cr.Circuit.OperatingPoint()
	if err != nil {
		panic(fmt.Sprintf("figures: Fig3 bias point failed: %v", err))
	}
	res := &Fig3Result{
		IOutQuiet: (sol.Voltage(cr.RailNode) - sol.Voltage(cr.OutNode)) / cr.RLoad,
		VGate:     sol.Voltage("gate"),
		Elements:  cr.Circuit.ElementNames(),
	}
	var b strings.Builder
	b.WriteString("Fig. 3 — EMI-coupled current reference (filter cap on mirror gate)\n")
	t := report.NewTable("", "quantity", "value")
	t.AddRow("technology", tech.Name)
	t.AddRow("elements", fmt.Sprintf("%v", res.Elements))
	t.AddRow("V(gate)", report.SI(res.VGate, "V"))
	t.AddRow("IOUT (quiet)", report.SI(res.IOutQuiet, "A"))
	b.WriteString(t.String())
	return res, b.String()
}

// Fig4Result is the EMI susceptibility map: output-current shift vs
// interference amplitude and frequency.
type Fig4Result struct {
	Sweep *emc.SweepResult
	// FilterSweep is the same grid with the gate filter capacitor removed.
	FilterlessShiftAtWorst float64
	// WorstShift is the largest |ΔIOUT| in the filtered circuit.
	WorstShift float64
	// WorstAmpl / WorstFreq locate it.
	WorstAmpl, WorstFreq float64
	// MonotoneInAmplitude reports whether |shift| grows with amplitude at
	// every frequency (the Fig. 4 message).
	MonotoneInAmplitude bool
}

// Fig4 sweeps EMI amplitude and frequency on the Fig. 3 reference and
// measures the mean output-current shift.
func Fig4(ampls, freqs []float64) (*Fig4Result, string) {
	tech := device.MustTech("180nm")
	cr := emc.BuildCurrentReference(tech, true)
	opts := emc.DefaultOptions(cr.RecordNodes()...)
	sw, err := emc.SweepEMI(cr.Circuit, cr.InjectName, ampls, freqs, cr.OutputCurrentMetric(), opts)
	if err != nil {
		panic(fmt.Sprintf("figures: Fig4 sweep failed: %v", err))
	}
	res := &Fig4Result{Sweep: sw, MonotoneInAmplitude: true}
	res.WorstShift, res.WorstAmpl, res.WorstFreq = sw.WorstShift()
	for j := range freqs {
		for i := 1; i < len(ampls); i++ {
			if abs(sw.Shift[i][j]) < abs(sw.Shift[i-1][j]) {
				res.MonotoneInAmplitude = false
			}
		}
	}
	// Comparison circuit without the filter capacitor at the worst point.
	crNF := emc.BuildCurrentReference(tech, false)
	r, err := emc.MeasureRectification(crNF.Circuit, crNF.InjectName,
		emc.Injection{Ampl: res.WorstAmpl, Freq: res.WorstFreq},
		crNF.OutputCurrentMetric(), emc.DefaultOptions(crNF.RecordNodes()...))
	if err != nil {
		panic(fmt.Sprintf("figures: Fig4 filterless comparison failed: %v", err))
	}
	res.FilterlessShiftAtWorst = r.Shift

	var b strings.Builder
	b.WriteString("Fig. 4 — EMI-induced DC shift of the reference output current\n")
	t := report.NewTable("", append([]string{"ampl [V] \\ freq"}, freqLabels(freqs)...)...)
	for i, a := range ampls {
		cells := []string{fmt.Sprintf("%.2f", a)}
		for j := range freqs {
			cells = append(cells, report.SI(sw.Shift[i][j], "A"))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "baseline IOUT: %s\n", report.SI(sw.Baseline, "A"))
	fmt.Fprintf(&b, "worst shift: %s at %.2f V, %s (%.1f%% of nominal)\n",
		report.SI(res.WorstShift, "A"), res.WorstAmpl, report.SI(res.WorstFreq, "Hz"),
		100*res.WorstShift/sw.Baseline)
	fmt.Fprintf(&b, "same point without the filter cap: %s\n", report.SI(res.FilterlessShiftAtWorst, "A"))
	return res, b.String()
}

func freqLabels(freqs []float64) []string {
	out := make([]string, len(freqs))
	for i, f := range freqs {
		out[i] = report.SI(f, "Hz")
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig4Default runs the default grid used by the bench harness.
func Fig4Default() (*Fig4Result, string) {
	return Fig4(
		[]float64{0.1, 0.2, 0.3, 0.45},
		[]float64{1e6, 10e6, 100e6, 1e9},
	)
}
