package figures

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/adapt"
	"repro/internal/aging"
	"repro/internal/calib"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mathx"
	"repro/internal/report"
	"repro/internal/variation"
)

// Fig5Result is the SSPA calibration study behind Fig. 5.
type Fig5Result struct {
	// Study carries the sigma and area-ratio numbers.
	Study *calib.AreaStudy
	// ExampleINLBefore/After demonstrate one instance.
	ExampleINLBefore, ExampleINLAfter float64
	// YieldIntrinsic / YieldCalibrated at the calibrated-design sigma.
	YieldIntrinsic, YieldCalibrated variation.YieldEstimate
	// PaperAreaRatio is the 6 % claim for reference.
	PaperAreaRatio float64
}

// Fig5 runs the DAC area study: the analog area a calibrated 14-bit DAC
// needs relative to an intrinsically accurate one, at equal INL < 0.5 LSB
// yield.
func Fig5(nMC int, seed uint64) (*Fig5Result, string) {
	cfg := calib.Paper14Bit(0)
	study, err := calib.RunAreaStudy(cfg, 0.5, 0.9, nMC, seed)
	if err != nil {
		panic(fmt.Sprintf("figures: Fig5 area study failed: %v", err))
	}
	res := &Fig5Result{Study: study, PaperAreaRatio: 0.06}

	// One demonstration instance at the calibrated design point.
	d, err := calib.NewDAC(calib.Paper14Bit(study.SigmaCalibrated), mathx.NewRNG(seed))
	if err != nil {
		panic(err)
	}
	res.ExampleINLBefore = d.MaxINL()
	d.CalibrateSSPA(0, mathx.NewRNG(seed+1))
	res.ExampleINLAfter = d.MaxINL()

	resY, err := calib.INLYield(calib.Paper14Bit(study.SigmaCalibrated), 0.5, false, nMC, seed+2)
	if err != nil {
		panic(err)
	}
	res.YieldIntrinsic = resY
	resC, err := calib.INLYield(calib.Paper14Bit(study.SigmaCalibrated), 0.5, true, nMC, seed+2)
	if err != nil {
		panic(err)
	}
	res.YieldCalibrated = resC

	var b strings.Builder
	b.WriteString("Fig. 5 — SSPA-calibrated 14-bit current-steering DAC vs intrinsic accuracy\n")
	t := report.NewTable("", "quantity", "value")
	t.AddRow("σ_unit intrinsic design", fmt.Sprintf("%.4f%%", 100*study.SigmaIntrinsic))
	t.AddRow("σ_unit calibrated design", fmt.Sprintf("%.4f%%", 100*study.SigmaCalibrated))
	t.AddRow("analog area ratio (cal/intr)", fmt.Sprintf("%.1f%%", 100*study.AnalogAreaRatio))
	t.AddRow("paper claim", "~6%")
	t.AddRow("example INL before SSPA", fmt.Sprintf("%.3f LSB", res.ExampleINLBefore))
	t.AddRow("example INL after SSPA", fmt.Sprintf("%.3f LSB", res.ExampleINLAfter))
	t.AddRow("yield at cal. σ, no SSPA", res.YieldIntrinsic.String())
	t.AddRow("yield at cal. σ, with SSPA", res.YieldCalibrated.String())
	b.WriteString(t.String())
	return res, b.String()
}

// Fig6Result is the knobs-and-monitors lifetime comparison.
type Fig6Result struct {
	// StaticTTF and AdaptiveTTF are times to first spec violation in
	// seconds (+Inf when the mission is survived).
	StaticTTF, AdaptiveTTF float64
	// KnobTrace is the adaptive bias level per checkpoint.
	KnobTrace []float64
	// Times are the checkpoints.
	Times []float64
	// GainStatic / GainAdaptive are the monitored gains per checkpoint.
	GainStatic, GainAdaptive []float64
}

// Fig6 runs the adaptive vs static amplifier mission of Fig. 6: a PMOS
// common-source stage whose gain degrades under NBTI, monitored by a gain
// sensor with a bias knob.
func Fig6(missionYears float64, checkpoints int) (*Fig6Result, string) {
	tech := device.MustTech("65nm")
	times := mathx.Logspace(1e5, missionYears*Year, checkpoints)
	gainSpec := variation.Spec{Name: "gain", Lo: 5.0, Hi: math.Inf(1)}

	build := func() (*circuit.Circuit, *adapt.Knob, adapt.Monitor) {
		c := circuit.New()
		c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
		vg := c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.45))
		vg.ACMag = 1
		c.AddResistor("RD", "d", "0", 20e3)
		m := device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300))
		c.AddMOSFET("M1", "d", "g", "vdd", "vdd", m)
		knob := adapt.VSourceKnob("vbias", vg, mathx.Linspace(tech.VDD-0.44, 0.2, 10))
		return c, knob, adapt.ACGainMonitor("gain", "d", 1e3)
	}

	run := func(adaptive bool) *adapt.MissionResult {
		c, knob, gain := build()
		ctrl, err := adapt.NewController([]*adapt.Knob{knob}, []adapt.Monitor{gain},
			[]variation.Spec{gainSpec}, adapt.Exhaustive)
		if err != nil {
			panic(err)
		}
		if _, err := ctrl.Tune(c); err != nil {
			panic(fmt.Sprintf("figures: Fig6 initial tune failed: %v", err))
		}
		ager := aging.NewCircuitAger(c,
			aging.Models{NBTI: aging.DefaultNBTI(), HCI: aging.DefaultHCI()}, 400, 99)
		res, err := adapt.RunMission(ager, ctrl, times, adaptive)
		if err != nil {
			panic(fmt.Sprintf("figures: Fig6 mission failed: %v", err))
		}
		return res
	}

	static := run(false)
	adaptiveRes := run(true)
	res := &Fig6Result{
		StaticTTF:   static.TimeToFailure(),
		AdaptiveTTF: adaptiveRes.TimeToFailure(),
	}
	for i, p := range adaptiveRes.Points {
		res.Times = append(res.Times, p.Time)
		if len(p.Values) > 0 {
			res.GainAdaptive = append(res.GainAdaptive, p.Values[0])
		} else {
			res.GainAdaptive = append(res.GainAdaptive, math.NaN())
		}
		if len(p.KnobIndices) > 0 {
			res.KnobTrace = append(res.KnobTrace, float64(p.KnobIndices[0]))
		}
		if len(static.Points) > i && len(static.Points[i].Values) > 0 {
			res.GainStatic = append(res.GainStatic, static.Points[i].Values[0])
		} else {
			res.GainStatic = append(res.GainStatic, math.NaN())
		}
	}

	var b strings.Builder
	b.WriteString("Fig. 6 — knobs & monitors: adaptive vs static amplifier over life\n")
	t := report.NewTable("", "t", "gain static", "gain adaptive", "knob idx")
	for i := range res.Times {
		t.AddRow(report.Years(res.Times[i]),
			fmt.Sprintf("%.2f", res.GainStatic[i]),
			fmt.Sprintf("%.2f", res.GainAdaptive[i]),
			fmt.Sprintf("%.0f", res.KnobTrace[i]))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "time to failure: static %s, adaptive %s\n",
		report.Years(res.StaticTTF), report.Years(res.AdaptiveTTF))
	return res, b.String()
}
