package jobspec

import "fmt"

// MaxBatchSpecs bounds the number of specs one batch submission may
// carry. A sweep bigger than this is split by the client into several
// batches; the bound keeps one request's admission check, dedup pass and
// journal fan-out O(small) under a tenant quota.
const MaxBatchSpecs = 256

// Batch is the wire format of POST /v1/batches: one request carrying a
// sweep of analysis specs that are admitted atomically under the
// submitting tenant's quota. Specs that are byte-identical after
// defaulting (equal CanonicalHash) are deduplicated into one job, and
// specs whose hash already has a cached result are answered from the
// spec-keyed result cache without a queue slot — a corner/seed sweep
// with overlapping points costs exactly its distinct uncached points.
type Batch struct {
	// Specs are the sweep points, in client order. Each is validated and
	// defaulted exactly like a standalone POST /v1/jobs submission.
	Specs []*Spec `json:"specs"`
}

// ApplyDefaults defaults every spec in the batch (see Spec.ApplyDefaults).
func (b *Batch) ApplyDefaults() {
	for _, s := range b.Specs {
		if s != nil {
			s.ApplyDefaults()
		}
	}
}

// Validate checks the batch shape and every contained spec; the first
// invalid spec fails the whole batch with its index, because batch
// admission is atomic — nothing runs unless everything admits.
func (b *Batch) Validate() error {
	if len(b.Specs) == 0 {
		return fmt.Errorf("jobspec: batch needs at least one spec")
	}
	if len(b.Specs) > MaxBatchSpecs {
		return fmt.Errorf("jobspec: batch carries %d specs (max %d)", len(b.Specs), MaxBatchSpecs)
	}
	for i, s := range b.Specs {
		if s == nil {
			return fmt.Errorf("jobspec: batch spec %d is null", i)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("jobspec: batch spec %d: %w", i, err)
		}
	}
	return nil
}
