package jobspec

import (
	"context"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/variation"
)

// mcShardSpec builds a defaults-applied MC spec on the shared inverter
// deck with a yield window, the shape every test here starts from.
func mcShardSpec(trials, shards int) *Spec {
	s := &Spec{
		Analysis: KindMC, Netlist: inverterDeck, Seed: 9,
		MC: &MCParams{Trials: trials, Node: "out", Lo: ptr(0.0), Hi: ptr(0.7), Shards: shards},
	}
	s.ApplyDefaults()
	return s
}

func TestShardKnobsHashSemantics(t *testing.T) {
	base := mcShardSpec(96, 0)
	// Shards is an execution knob: any fan-out computes the same result,
	// so it must not perturb the cache key.
	sharded := mcShardSpec(96, 4)
	if base.CanonicalHash() != sharded.CanonicalHash() {
		t.Error("mc.shards leaked into the canonical hash")
	}
	// Range is different work — a sub-slice of the campaign — and must
	// produce a different key than the full campaign.
	ranged := mcShardSpec(96, 0)
	ranged.MC.Range = &TrialRange{From: 0, To: variation.ChunkSize(96)}
	if ranged.CanonicalHash() == base.CanonicalHash() {
		t.Error("mc.range did not change the canonical hash")
	}
}

func TestValidateShardAndRange(t *testing.T) {
	cs := variation.ChunkSize(96) // 24
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"negative shards", func(s *Spec) { s.MC.Shards = -1 }, "shards >= 0"},
		{"range plus shards", func(s *Spec) {
			s.MC.Shards = 2
			s.MC.Range = &TrialRange{From: 0, To: cs}
		}, "mutually exclusive"},
		{"range beyond trials", func(s *Spec) { s.MC.Range = &TrialRange{From: 0, To: 97} }, "outside"},
		{"inverted range", func(s *Spec) { s.MC.Range = &TrialRange{From: cs, To: cs} }, "outside"},
		{"misaligned range", func(s *Spec) { s.MC.Range = &TrialRange{From: 7, To: 96} }, "not aligned"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mcShardSpec(96, 0)
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	ok := mcShardSpec(96, 0)
	ok.MC.Range = &TrialRange{From: cs, To: 2 * cs}
	if err := ok.Validate(); err != nil {
		t.Errorf("aligned range rejected: %v", err)
	}
}

// A trial-range sub-job must report its chunks (the scatter-gather
// currency) and no per-trial values.
func TestExecuteRangeSubJob(t *testing.T) {
	const trials = 96
	cs := variation.ChunkSize(trials)
	spec := mcShardSpec(trials, 0)
	spec.MC.Range = &TrialRange{From: cs, To: 3 * cs}
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	mc := res.MC
	if mc == nil {
		t.Fatal("no mc outcome")
	}
	if len(mc.Values) != 0 {
		t.Errorf("sub-job shipped %d per-trial values", len(mc.Values))
	}
	if mc.Requested != 2*cs || mc.Completed() != 2*cs {
		t.Errorf("requested %d completed %d, want %d", mc.Requested, mc.Completed(), 2*cs)
	}
	if len(mc.Chunks) != 2 {
		t.Fatalf("sub-job reported %d chunks, want 2", len(mc.Chunks))
	}
	for i, st := range mc.Chunks {
		if st.Chunk != 1+i {
			t.Errorf("chunk %d has index %d, want %d", i, st.Chunk, 1+i)
		}
	}
}

// k-shard execution (k in {1, 4, 16}) must reproduce the unsharded
// run's trial count, mean, std and yield bit-for-bit, and its quantiles
// within the sketch's documented rank-error bound.
func TestExecuteShardedMatchesSingleShard(t *testing.T) {
	const trials = 96
	ref, err := Execute(context.Background(), mcShardSpec(trials, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ref.MC.Values); got == 0 {
		t.Fatal("reference run kept no values")
	}
	sorted := append([]float64(nil), ref.MC.Values...)
	sort.Float64s(sorted)

	for _, k := range []int{1, 4, 16} {
		res, err := Execute(context.Background(), mcShardSpec(trials, k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		mc := res.MC
		if mc.Stats == nil {
			t.Fatalf("k=%d: no stats", k)
		}
		if k > 1 && len(mc.Values) != 0 {
			t.Errorf("k=%d: sharded run shipped per-trial values", k)
		}
		if mc.Completed() != ref.MC.Completed() || mc.Cancelled != 0 {
			t.Errorf("k=%d: completed %d cancelled %d, want %d/0",
				k, mc.Completed(), mc.Cancelled, ref.MC.Completed())
		}
		if mc.Stats.Mean() != ref.MC.Stats.Mean() {
			t.Errorf("k=%d: mean %v != %v (not bit-identical)", k, mc.Stats.Mean(), ref.MC.Stats.Mean())
		}
		if mc.Stats.StdDev() != ref.MC.Stats.StdDev() {
			t.Errorf("k=%d: std %v != %v (not bit-identical)", k, mc.Stats.StdDev(), ref.MC.Stats.StdDev())
		}
		if mc.Yield == nil || ref.MC.Yield == nil || *mc.Yield != *ref.MC.Yield {
			t.Errorf("k=%d: yield %v != %v", k, mc.Yield, ref.MC.Yield)
		}
		for _, p := range []float64{0.05, 0.5, 0.95} {
			est := mc.Stats.Quantile(p)
			i := sort.SearchFloat64s(sorted, est)
			if e := math.Abs(float64(i)/float64(len(sorted)) - p); e > 2.0/mathx.DefaultSketchCompression {
				t.Errorf("k=%d p=%g: rank error %.4f over bound", k, p, e)
			}
		}
	}
}

// Checkpoints journaled from an interrupted run, handed back through
// Options.Resume, must skip exactly the covered chunks and reproduce
// the uninterrupted moments bit-for-bit.
func TestExecuteCheckpointResume(t *testing.T) {
	const trials = 96
	nc := variation.NumChunks(trials)

	var ckpts []json.RawMessage
	full, err := ExecuteOpts(context.Background(), mcShardSpec(trials, 0), Options{
		OnCheckpoint: func(cp Checkpoint) { ckpts = append(ckpts, cp.Data) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != nc {
		t.Fatalf("journaled %d checkpoints, want %d", len(ckpts), nc)
	}

	for _, m := range []int{1, nc - 1, nc} {
		var reran []Checkpoint
		res, err := ExecuteOpts(context.Background(), mcShardSpec(trials, 0), Options{
			Resume:       ckpts[:m],
			OnCheckpoint: func(cp Checkpoint) { reran = append(reran, cp) },
		})
		if err != nil {
			t.Fatalf("resume m=%d: %v", m, err)
		}
		mc := res.MC
		if mc.Resumed != m || len(reran) != nc-m {
			t.Fatalf("m=%d: resumed %d, re-ran %d chunks (want %d, %d)", m, mc.Resumed, len(reran), m, nc-m)
		}
		if mc.Completed() != full.MC.Completed() {
			t.Fatalf("m=%d: completed %d != %d", m, mc.Completed(), full.MC.Completed())
		}
		if mc.Stats.Moments != full.MC.Stats.Moments {
			t.Fatalf("m=%d: moments %+v != %+v (not bit-identical)", m, mc.Stats.Moments, full.MC.Stats.Moments)
		}
		if len(mc.Values) != 0 {
			t.Errorf("m=%d: resumed run shipped per-trial values", m)
		}
	}

	// A checkpoint from a different campaign grid must fail the run
	// loudly, never merge wrong statistics.
	foreign := mcShardSpec(400, 0) // ChunkSize(400)=100: chunk 0 is [0,100), not [0,24)
	if _, err := ExecuteOpts(context.Background(), foreign, Options{Resume: ckpts[:1]}); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
	if _, err := ExecuteOpts(context.Background(), mcShardSpec(trials, 0), Options{
		Resume: []json.RawMessage{json.RawMessage(`{broken`)},
	}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// The sharded path must dispatch each shard's sub-spec through the
// RunShard hook (the server's peer-dispatch seam), resume-skip fully
// checkpointed shards, and checkpoint newly computed chunks.
func TestExecuteShardedRunShardHook(t *testing.T) {
	const trials = 96
	nc := variation.NumChunks(trials)
	cs := variation.ChunkSize(trials)

	var mu sync.Mutex
	var dispatched []TrialRange
	var ckpts []json.RawMessage
	res, err := ExecuteOpts(context.Background(), mcShardSpec(trials, 4), Options{
		OnCheckpoint: func(cp Checkpoint) {
			mu.Lock()
			ckpts = append(ckpts, cp.Data)
			mu.Unlock()
		},
		RunShard: func(ctx context.Context, shard int, sub *Spec) (*Result, error) {
			mu.Lock()
			dispatched = append(dispatched, *sub.MC.Range)
			mu.Unlock()
			if sub.MC.Shards != 0 {
				t.Errorf("shard %d sub-spec still sharded (%d)", shard, sub.MC.Shards)
			}
			if sub.MC.Trials != trials {
				t.Errorf("shard %d sub-spec trials %d, want the campaign total %d", shard, sub.MC.Trials, trials)
			}
			return ExecuteOpts(ctx, sub, Options{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dispatched) != 4 || len(ckpts) != nc {
		t.Fatalf("dispatched %d shards, journaled %d checkpoints (want 4, %d)", len(dispatched), len(ckpts), nc)
	}
	covered := 0
	for _, r := range dispatched {
		covered += r.To - r.From
	}
	if covered != trials {
		t.Errorf("shard ranges cover %d trials, want %d", covered, trials)
	}
	if res.MC.Shards != 4 || res.MC.Completed() != trials {
		t.Errorf("shards %d completed %d, want 4/%d", res.MC.Shards, res.MC.Completed(), trials)
	}

	// Resuming the sharded run from shard 0's checkpoint must skip that
	// shard entirely: the hook never sees its range again. Sharded
	// checkpoints arrive in shard-completion order, so find chunk 0's.
	var chunk0 json.RawMessage
	for _, b := range ckpts {
		var st variation.ChunkStat
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.Chunk == 0 {
			chunk0 = b
		}
	}
	if chunk0 == nil {
		t.Fatal("no checkpoint for chunk 0")
	}
	dispatched = nil
	res2, err := ExecuteOpts(context.Background(), mcShardSpec(trials, 4), Options{
		Resume: []json.RawMessage{chunk0}, // chunk 0 == shard 0's whole range (nc == k)
		RunShard: func(ctx context.Context, _ int, sub *Spec) (*Result, error) {
			mu.Lock()
			dispatched = append(dispatched, *sub.MC.Range)
			mu.Unlock()
			return ExecuteOpts(ctx, sub, Options{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dispatched) != 3 {
		t.Fatalf("resume dispatched %d shards, want 3", len(dispatched))
	}
	for _, r := range dispatched {
		if r.From == 0 {
			t.Errorf("resumed shard [0,%d) was re-dispatched", cs)
		}
	}
	if res2.MC.Resumed != 1 || res2.MC.Completed() != trials {
		t.Errorf("resumed %d completed %d, want 1/%d", res2.MC.Resumed, res2.MC.Completed(), trials)
	}
	if res.MC.Stats.Moments != res2.MC.Stats.Moments {
		t.Errorf("resumed sharded moments differ: %+v != %+v", res2.MC.Stats.Moments, res.MC.Stats.Moments)
	}
}
