package jobspec

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/report/signoff"
)

// cornersSpec builds a judged corner-sweep spec over the shared inverter.
func cornersSpec(lo, hi *float64) *Spec {
	s := &Spec{
		Analysis: KindCorners, Netlist: inverterDeck,
		Corners: &CornersParams{Node: "out", Lo: lo, Hi: hi},
	}
	s.ApplyDefaults()
	return s
}

func TestExecuteCornersJudgedWindow(t *testing.T) {
	res, err := Execute(context.Background(), cornersSpec(ptr(0.0), ptr(1.1)))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Corners
	if c == nil {
		t.Fatal("no corners result")
	}
	if len(c.Corners) != 5 {
		t.Fatalf("%d corners, want the 5 classic ones", len(c.Corners))
	}
	if c.Worst == "" {
		t.Error("no worst corner identified")
	}
	allPass := true
	for _, cv := range c.Corners {
		if cv.Pass == nil || cv.Margin == nil {
			t.Fatalf("corner %s unjudged despite a spec window", cv.Name)
		}
		if *cv.Pass != (*cv.Margin >= 0) {
			t.Errorf("corner %s: pass=%v inconsistent with margin=%g", cv.Name, *cv.Pass, *cv.Margin)
		}
		allPass = allPass && *cv.Pass
	}
	if c.Pass != allPass {
		t.Errorf("sweep pass=%v, corners say %v", c.Pass, allPass)
	}
	// The rail-to-rail window must pass everywhere; a window the inverter
	// output can never reach must fail everywhere and pick the same worst
	// corner story with negative margins.
	tight, err := Execute(context.Background(), cornersSpec(ptr(2.0), nil))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Corners.Pass {
		t.Error("a 2 V lower bound passed on a 1.1 V supply")
	}
	for _, cv := range tight.Corners.Corners {
		if cv.Margin != nil && *cv.Margin >= 0 {
			t.Errorf("corner %s has non-negative margin %g against an unreachable window", cv.Name, *cv.Margin)
		}
	}
}

// TestExecuteMCPinnedAtCorner checks that MCParams.Corner actually moves
// the campaign: the same seed at SS and FF must land on different means
// (the global shift is deterministic per polarity), and the pin must be
// part of the canonical hash — MC at SS is different work than at TT.
func TestExecuteMCPinnedAtCorner(t *testing.T) {
	mc := func(corner *CornerShift) *Spec {
		s := &Spec{
			Analysis: KindMC, Netlist: inverterDeck, Seed: 11,
			MC: &MCParams{Trials: 32, Node: "out", Corner: corner},
		}
		s.ApplyDefaults()
		return s
	}
	nom, err := Execute(context.Background(), mc(nil))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Execute(context.Background(), mc(&CornerShift{Name: "SS"}))
	if err != nil {
		t.Fatal(err)
	}
	if nom.MC.Stats.Mean() == ss.MC.Stats.Mean() {
		t.Error("pinning to SS did not shift the campaign mean")
	}
	if mc(nil).CanonicalHash() == mc(&CornerShift{Name: "SS"}).CanonicalHash() {
		t.Error("corner pin absent from the canonical hash: SS and nominal would share a cache entry")
	}
}

// TestExecuteCenteringImprovesYield is the acceptance pin for the design-
// centering loop: against a window carved from the uncentered
// distribution, at least one sizing move must be found that measurably
// raises yield. The window is self-calibrated (mean ± 1σ of a plain MC
// run) so the test tracks the device models instead of hard-coding
// voltages; the matched group MN+MP keeps the inverter's ratio while
// widening both, which buys yield through the Pelgrom 1/√(WL) law.
func TestExecuteCenteringImprovesYield(t *testing.T) {
	probe := &Spec{
		Analysis: KindMC, Netlist: inverterDeck, Seed: 5,
		MC: &MCParams{Trials: 96, Node: "out"},
	}
	probe.ApplyDefaults()
	pr, err := Execute(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	mean, sd := pr.MC.Stats.Mean(), pr.MC.Stats.StdDev()
	if sd <= 0 {
		t.Fatalf("degenerate probe distribution: σ = %g", sd)
	}

	spec := &Spec{
		Analysis: KindCentering, Netlist: inverterDeck, Seed: 5,
		Centering: &CenteringParams{
			Node: "out", Lo: ptr(mean - sd), Hi: ptr(mean + sd),
			Trials: 96, MaxIters: 4, Devices: []string{"MN+MP"},
		},
	}
	spec.ApplyDefaults()
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Centering
	if c == nil {
		t.Fatal("no centering outcome")
	}
	if c.Final.Yield.Yield <= c.Baseline.Yield.Yield {
		t.Fatalf("centering found no improvement: %.1f%% -> %.1f%%",
			100*c.Baseline.Yield.Yield, 100*c.Final.Yield.Yield)
	}
	// The trajectory is monotone by construction (only improving moves
	// are accepted) and the sizing table must echo the accepted moves.
	prev := -1.0
	for _, p := range c.Trajectory {
		if p.Yield.Yield < prev {
			t.Fatalf("trajectory not monotone at iteration %d", p.Iteration)
		}
		prev = p.Yield.Yield
	}
	var moved bool
	for _, s := range c.Sizing {
		if s.Scale != 1 {
			moved = true
		}
	}
	if !moved {
		t.Error("yield improved but the sizing table reports every device untouched")
	}
}

func signoffSpec() *Spec {
	s := &Spec{
		Analysis: KindSignoff, Netlist: inverterDeck, Seed: 3,
		Signoff: &SignoffParams{Node: "out", Lo: ptr(0.0), Hi: ptr(1.1), Trials: 48},
	}
	s.ApplyDefaults()
	return s
}

func TestExecuteSignoffAssemblesReport(t *testing.T) {
	res, err := Execute(context.Background(), signoffSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("clean campaign marked partial: %s", res.Warning)
	}
	r := res.Signoff
	if r == nil {
		t.Fatal("no signoff report")
	}
	if r.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1", r.SchemaVersion)
	}
	if r.Corners == nil || r.Yield == nil || r.Aging == nil || r.Reliability == nil {
		t.Fatalf("missing section in a clean run: corners=%v yield=%v aging=%v rel=%v",
			r.Corners != nil, r.Yield != nil, r.Aging != nil, r.Reliability != nil)
	}
	if r.Yield.Corner != r.Corners.Worst {
		t.Errorf("MC pinned to %q, corner sweep says worst is %q", r.Yield.Corner, r.Corners.Worst)
	}
	if len(r.Provenance) != SignoffNodes {
		t.Fatalf("%d provenance records, want %d (one per DAG node)", len(r.Provenance), SignoffNodes)
	}
	for _, sj := range r.Provenance {
		if sj.Error != "" || sj.Skipped {
			t.Errorf("node %s not clean: %+v", sj.Name, sj)
		}
		if sj.Analysis != "" && sj.Hash == "" {
			t.Errorf("sub-job node %s carries no cache hash", sj.Name)
		}
	}
	if r.Pass && len(r.Violations) != 0 {
		t.Errorf("pass=true with violations %v", r.Violations)
	}
	// The report is the cacheable payload: it must round-trip JSON
	// byte-identically (no maps, no NaN — the determinism contract in
	// docs/REPORT_SCHEMA.md).
	b1, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("signoff result does not round-trip JSON byte-identically")
	}
}

// TestSignoffSubJobFailureYieldsPartialReport kills the Monte-Carlo node
// through the RunSub hook: the campaign must still deliver a structured
// report — corners intact, yield absent, the failure named in both the
// violations and the provenance — flagged Partial rather than erroring out.
func TestSignoffSubJobFailureYieldsPartialReport(t *testing.T) {
	boom := errors.New("engine knocked over")
	res, err := ExecuteOpts(context.Background(), signoffSpec(), Options{
		RunSub: func(ctx context.Context, name string, sub *Spec) (*Result, bool, error) {
			if name == "mc" {
				return nil, false, boom
			}
			r, err := ExecuteOpts(ctx, sub, Options{})
			return r, false, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("sub-job failure did not mark the result partial")
	}
	r := res.Signoff
	if r == nil {
		t.Fatal("no report despite the partial contract")
	}
	if r.Pass {
		t.Error("report passed with a failed sub-job")
	}
	if r.Corners == nil {
		t.Error("corners section lost although its node succeeded")
	}
	if r.Yield != nil {
		t.Error("yield section present although its node failed")
	}
	var named bool
	for _, v := range r.Violations {
		if strings.Contains(v, "mc") {
			named = true
		}
	}
	if !named {
		t.Errorf("violations %v do not name the failed node", r.Violations)
	}
	mc := provenanceOf(t, r.Provenance, "mc")
	if mc.Error == "" || !strings.Contains(mc.Error, boom.Error()) {
		t.Errorf("mc provenance error = %q, want the root cause", mc.Error)
	}
}

// TestSignoffResumesFromSubjobCheckpoints replays the checkpoints of a
// completed campaign into a fresh execution: no sub-job may run again,
// and the report must mark every sub-job node as resumed.
func TestSignoffResumesFromSubjobCheckpoints(t *testing.T) {
	var cps []json.RawMessage
	first, err := ExecuteOpts(context.Background(), signoffSpec(), Options{
		OnCheckpoint: func(cp Checkpoint) {
			if cp.Stage != "subjob" {
				t.Errorf("unexpected checkpoint stage %q", cp.Stage)
			}
			cps = append(cps, cp.Data)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("campaign emitted no checkpoints")
	}

	second, err := ExecuteOpts(context.Background(), signoffSpec(), Options{
		Resume: cps,
		RunSub: func(_ context.Context, name string, _ *Spec) (*Result, bool, error) {
			t.Errorf("sub-job %s re-executed despite a checkpoint", name)
			return nil, false, errors.New("must not run")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sj := range second.Signoff.Provenance {
		if sj.Analysis == "" {
			continue // inline roll-up nodes recompute; they have no sub-job to skip
		}
		if !sj.Resumed {
			t.Errorf("node %s not marked resumed", sj.Name)
		}
	}
	// Resumed or not, the verdict is the same campaign.
	if second.Signoff.Pass != first.Signoff.Pass {
		t.Error("resumed campaign reached a different verdict")
	}

	// A checkpoint from a different campaign (the seed changed, so every
	// sub-spec hash changed) must refuse loudly instead of merging
	// foreign numbers: the affected nodes fail with a hash mismatch and
	// the report comes back partial.
	other := signoffSpec()
	other.Seed = 99
	foreign, err := ExecuteOpts(context.Background(), other, Options{Resume: cps})
	if err != nil {
		t.Fatal(err)
	}
	if !foreign.Partial {
		t.Fatal("foreign checkpoints merged silently across a spec change")
	}
	var mismatch bool
	for _, sj := range foreign.Signoff.Provenance {
		if strings.Contains(sj.Error, "does not match") {
			mismatch = true
		}
	}
	if !mismatch {
		t.Errorf("no provenance record names the hash mismatch: %+v", foreign.Signoff.Provenance)
	}
}

func provenanceOf(t *testing.T, list []signoff.SubJob, name string) signoff.SubJob {
	t.Helper()
	for _, sj := range list {
		if sj.Name == name {
			return sj
		}
	}
	t.Fatalf("no provenance record for %q", name)
	panic("unreachable")
}
