package jobspec

import (
	"repro/internal/report/signoff"
	"repro/internal/variation"
)

// Result is the structured outcome of one executed Spec — everything a
// renderer (CLI tables/CSV) or an API client (JSON) needs, with exactly
// one analysis-specific block populated according to Kind. All fields
// marshal cleanly to JSON: unbounded or undefined quantities are encoded
// by absence, never by ±Inf/NaN.
type Result struct {
	// Kind echoes the executed analysis.
	Kind Kind `json:"kind"`
	// Seed echoes the RNG seed the run actually used (meaningful for mc
	// and age). ApplyDefaults rewrites an unset seed to 1, so this is how
	// a client that submitted a sparse spec learns the value it must
	// resubmit to reproduce the run.
	Seed uint64 `json:"seed,omitempty"`
	// Elapsed is the end-to-end execution wall time.
	Elapsed Duration `json:"elapsed"`
	// Partial marks a run cut short by cancellation or deadline; the
	// analysis block then describes the completed portion and Warning
	// carries the cause.
	Partial bool   `json:"partial,omitempty"`
	Warning string `json:"warning,omitempty"`

	OP        *OPResult         `json:"op,omitempty"`
	Series    *Series           `json:"series,omitempty"` // tran, sweep, ac
	Age       *AgeResult        `json:"age,omitempty"`
	MC        *MCOutcome        `json:"mc,omitempty"`
	Corners   *CornersResult    `json:"corners,omitempty"`
	Centering *CenteringOutcome `json:"centering,omitempty"`
	Signoff   *signoff.Report   `json:"signoff,omitempty"`
}

// NodeVoltage is one (node, voltage) pair in report order.
type NodeVoltage struct {
	Node string  `json:"node"`
	V    float64 `json:"v"`
}

// OPResult is a DC operating point: node voltages plus a per-MOSFET
// bias summary.
type OPResult struct {
	Nodes   []NodeVoltage `json:"nodes"`
	Devices []DeviceOP    `json:"devices,omitempty"`
}

// DeviceOP summarises one MOSFET's bias point.
type DeviceOP struct {
	Name   string  `json:"name"`
	ID     float64 `json:"id"`
	Gm     float64 `json:"gm"`
	Region string  `json:"region"`
}

// Series is a rectangular sweep result (transient, DC sweep or AC): one
// header per column, one row per abscissa point — the shape report.CSV
// prints directly.
type Series struct {
	Headers []string    `json:"headers"`
	Rows    [][]float64 `json:"rows"`
}

// AgeResult is a mission-aging trajectory plus end-of-life damage.
type AgeResult struct {
	// Years and TempK echo the mission (table-title metadata).
	Years float64 `json:"years"`
	TempK float64 `json:"temp_k"`
	// Nodes is the recorded node order (column order for renderers, even
	// when every checkpoint failed to converge).
	Nodes []string `json:"nodes"`
	// Checkpoints hold the recorded node voltages at each age; a Failed
	// checkpoint is one where the circuit no longer converges.
	Checkpoints []AgeCheckpoint `json:"checkpoints"`
	// Devices lists per-device damage at end of life in sorted-name order.
	Devices []DeviceDamage `json:"devices,omitempty"`
}

// AgeCheckpoint is one point of the trajectory.
type AgeCheckpoint struct {
	Time   float64       `json:"time"`
	Failed bool          `json:"failed,omitempty"`
	Nodes  []NodeVoltage `json:"nodes,omitempty"`
}

// DeviceDamage is one device's accumulated wear.
type DeviceDamage struct {
	Name           string  `json:"name"`
	DeltaVT        float64 `json:"delta_vt"`
	MobilityFactor float64 `json:"mobility_factor"`
	BDMode         string  `json:"bd_mode"`
}

// MCOutcome is a Monte-Carlo mismatch distribution with its exact
// failure accounting: Requested == len(Values) + Failures + NaNs +
// Cancelled always holds, including on partial (cancelled) runs.
type MCOutcome struct {
	Node      string `json:"node"`
	Requested int    `json:"requested"`
	// Values holds every successful trial's metric in trial order. Sharded
	// and resumed campaigns do not ship per-trial values — they report
	// from Stats instead, and Values is absent.
	Values    []float64 `json:"values,omitempty"`
	Failures  int       `json:"failures"`
	NaNs      int       `json:"nans"`
	Cancelled int       `json:"cancelled"`
	// Elapsed is the Monte-Carlo engine's own wall time (excludes deck
	// parsing and the nominal warm-start solve).
	Elapsed Duration `json:"elapsed"`
	// Stats is the mergeable statistical summary (exact moments and
	// counts, bounded-error quantile sketch). It is the authoritative
	// accounting when Values is absent.
	Stats *variation.MCStats `json:"stats,omitempty"`
	// Chunks carries the per-chunk summaries of a trial-range sub-job so
	// the dispatching parent can scatter-gather and checkpoint them.
	// Populated only when the spec had MC.Range set.
	Chunks []variation.ChunkStat `json:"chunks,omitempty"`
	// Shards is the scatter-gather fan-out that produced this outcome
	// (0 for an unsharded run); Resumed counts grid chunks restored from
	// checkpoints instead of re-run.
	Shards  int `json:"shards,omitempty"`
	Resumed int `json:"resumed,omitempty"`
	// FailuresByKind tallies failed trials by the variation taxonomy
	// (convergence, panic, cancelled, other).
	FailuresByKind map[string]int `json:"failures_by_kind,omitempty"`
	// FirstFailure is the first structured trial error, as a debugging
	// sample.
	FirstFailure string `json:"first_failure,omitempty"`
	// Yield is the spec yield estimate; nil when the spec had no bounds
	// or no trial succeeded.
	Yield *variation.YieldEstimate `json:"yield,omitempty"`
}

// Completed returns the number of trials that ran to a verdict.
func (m *MCOutcome) Completed() int {
	if m.Stats != nil {
		return m.Stats.Completed()
	}
	return len(m.Values) + m.NaNs + m.Failures
}

// CornersResult is a global-corner sweep of one node voltage with
// worst-case identification, and — when the spec carried limits — a
// per-corner pass/fail verdict.
type CornersResult struct {
	Node    string        `json:"node"`
	Corners []CornerValue `json:"corners"`
	// Lo/Hi echo the spec window the corners were judged against; both
	// absent when the sweep ran without limits.
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
	// Worst names the worst-case corner: minimal spec margin when limits
	// were given, otherwise the largest deviation from TT. WorstV is its
	// value.
	Worst  string  `json:"worst,omitempty"`
	WorstV float64 `json:"worst_v,omitempty"`
	// Pass reports whether every corner met the window (vacuously true
	// without limits).
	Pass bool `json:"pass"`
}

// CornerValue is one corner's result.
type CornerValue struct {
	Name string  `json:"name"`
	V    float64 `json:"v"`
	// Pass and Margin are the spec verdict and the distance to the
	// nearest spec edge (negative when out of spec); absent when the
	// sweep ran without limits. A NaN measurement fails with no margin.
	Pass   *bool    `json:"pass,omitempty"`
	Margin *float64 `json:"margin,omitempty"`
}

// CenteringOutcome is a design-centering run: the yield trajectory of
// the greedy width search and the final per-device sizing.
type CenteringOutcome struct {
	Node string `json:"node"`
	// Trials is the Monte-Carlo sample size of each candidate evaluation
	// (common random numbers across candidates).
	Trials int `json:"trials"`
	// Baseline and Final are the first and last trajectory points; the
	// demo claim "centering improves yield" is Final.Yield vs
	// Baseline.Yield.
	Baseline CenteringPoint `json:"baseline"`
	Final    CenteringPoint `json:"final"`
	// Trajectory holds every accepted move, baseline first.
	Trajectory []CenteringPoint `json:"trajectory"`
	// Sizing lists each candidate device's final width, sorted by name.
	Sizing []DeviceScale `json:"sizing"`
	// Converged reports the search stopped because no move improved,
	// rather than exhausting max_iters.
	Converged bool `json:"converged"`
}

// CenteringPoint is one accepted point of a centering trajectory.
type CenteringPoint struct {
	// Iteration numbers the accepted move (0 = uncentered baseline);
	// Device/Scale identify the move (absent at the baseline).
	Iteration int     `json:"iteration"`
	Device    string  `json:"device,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	// Yield is the spec yield at this sizing (NaN dies count as rejects).
	Yield variation.YieldEstimate `json:"yield"`
	// Mean and Sigma summarise the metric distribution; absent when no
	// die produced a finite value.
	Mean  *float64 `json:"mean,omitempty"`
	Sigma *float64 `json:"sigma,omitempty"`
}

// DeviceScale is one device's final centering sizing.
type DeviceScale struct {
	Device string `json:"device"`
	// Scale is the cumulative width scale vs the deck (1 = untouched);
	// WidthM the resulting drawn width in metres.
	Scale  float64 `json:"scale"`
	WidthM float64 `json:"width_m"`
}
