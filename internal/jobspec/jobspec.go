// Package jobspec defines the versioned, JSON-serializable description of
// one reliability analysis — the unit of work of this reproduction. The
// paper's resilience loop (§5.2) assumes reliability analyses run as
// continuous, parameterized campaigns rather than ad-hoc batch
// invocations; a campaign needs a stable wire format for "run this
// analysis on this netlist with these parameters". A Spec captures
// exactly that (analysis kind, netlist source, parameters, seed, wall
// budget), a Result captures the structured outcome, and Execute runs the
// one through the other — the single dispatch path behind both the relsim
// command line and the internal/serve HTTP job service, so a flag-driven
// one-shot run and a POSTed server job execute the identical struct.
package jobspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/variation"
)

// SpecVersion is the current schema version. Version 0 in an incoming
// document means "unversioned, oldest" and is upgraded to the current
// version by ApplyDefaults; versions above SpecVersion are rejected by
// Validate so an old server never silently misreads a newer client's
// spec. Version 2 added the yield-campaign layer: spec limits and
// worst-corner identification on corners, the mc corner pin, and the
// centering and signoff analyses. Version-1 documents remain valid.
const SpecVersion = 2

// Kind names one analysis.
type Kind string

// The supported analysis kinds. They mirror relsim's -analysis values.
const (
	KindOP        Kind = "op"        // DC operating point
	KindTran      Kind = "tran"      // transient (fixed or adaptive step)
	KindSweep     Kind = "sweep"     // DC source sweep
	KindAC        Kind = "ac"        // small-signal frequency sweep
	KindAge       Kind = "age"       // NBTI/HCI/TDDB mission aging
	KindMC        Kind = "mc"        // Monte-Carlo mismatch
	KindCorners   Kind = "corners"   // TT/SS/FF/SF/FS global corners
	KindCentering Kind = "centering" // design-centering yield optimization
	KindSignoff   Kind = "signoff"   // composite corners→MC→aging/EM signoff campaign
)

// Kinds lists every valid analysis kind in documentation order.
func Kinds() []Kind {
	return []Kind{KindOP, KindTran, KindSweep, KindAC, KindAge, KindMC,
		KindCorners, KindCentering, KindSignoff}
}

// ErrUnknownAnalysis tags validation failures caused by an unrecognised
// analysis kind, so the CLI can turn exactly that mistake into usage +
// exit 2 while other validation errors stay ordinary failures.
type ErrUnknownAnalysis struct{ Kind Kind }

func (e *ErrUnknownAnalysis) Error() string {
	return fmt.Sprintf("jobspec: unknown analysis %q (want one of %v)", e.Kind, Kinds())
}

// Duration is a time.Duration that marshals to/from the Go duration
// string ("30s", "1m30s") so specs stay readable on the wire.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a number of
// nanoseconds (the encoding a naive client produces).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobspec: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("jobspec: duration must be a string or integer nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// Spec is one fully-parameterized analysis request. The zero value plus
// Analysis and a netlist source is a valid request after ApplyDefaults.
type Spec struct {
	// Version is the schema version (see SpecVersion). 0 means "default".
	Version int `json:"version"`
	// Analysis selects the engine.
	Analysis Kind `json:"analysis"`
	// Netlist is the inline SPICE-flavoured deck text. It takes priority
	// over NetlistFile and is the only source the HTTP server accepts.
	Netlist string `json:"netlist,omitempty"`
	// NetlistFile names a local file to read when Netlist is empty
	// (CLI convenience; rejected by the job server).
	NetlistFile string `json:"netlist_file,omitempty"`
	// Record lists the nodes to report (empty = analysis-specific default,
	// usually every node).
	Record []string `json:"record,omitempty"`
	// Seed fixes the RNG for mc and age. A sparse document may omit it
	// (or carry 0): ApplyDefaults rewrites 0 to 1, so an unseeded
	// submission is deterministic rather than irreproducible. The seed a
	// run actually used is echoed back in Result.Seed, so a client that
	// submitted without an explicit seed can still reproduce the run.
	Seed uint64 `json:"seed,omitempty"`
	// NoCache opts this submission out of the server's spec-keyed result
	// cache: it is neither answered from the cache nor entered into it.
	// The field is excluded from CanonicalHash, so a no_cache run of a
	// spec does not perturb the cache key of its cacheable twin.
	NoCache bool `json:"no_cache,omitempty"`
	// Timeout bounds the analysis wall clock; on expiry mc and age report
	// the completed portion as a partial result. 0 = unbounded.
	Timeout Duration `json:"timeout,omitempty"`

	// Exactly the parameter block matching Analysis is consulted; the
	// others may be nil.
	Tran      *TranParams      `json:"tran,omitempty"`
	Sweep     *SweepParams     `json:"sweep,omitempty"`
	AC        *ACParams        `json:"ac,omitempty"`
	Age       *AgeParams       `json:"age,omitempty"`
	MC        *MCParams        `json:"mc,omitempty"`
	Corners   *CornersParams   `json:"corners,omitempty"`
	Centering *CenteringParams `json:"centering,omitempty"`
	Signoff   *SignoffParams   `json:"signoff,omitempty"`
}

// TranParams parameterizes a transient analysis.
type TranParams struct {
	// Stop is the end time [s]; Step the fixed step (or minimum step when
	// Adaptive) [s].
	Stop float64 `json:"stop"`
	Step float64 `json:"step"`
	// Adaptive selects LTE-controlled variable stepping with tolerance
	// LTETol [V].
	Adaptive bool    `json:"adaptive,omitempty"`
	LTETol   float64 `json:"lte_tol,omitempty"`
}

// SweepParams parameterizes a DC sweep.
type SweepParams struct {
	// Source is the swept source element.
	Source string  `json:"source"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
}

// ACParams parameterizes a small-signal frequency sweep.
type ACParams struct {
	// Source is stimulated with ACMag = 1.
	Source string  `json:"source"`
	FStart float64 `json:"fstart"`
	FStop  float64 `json:"fstop"`
	Points int     `json:"points"`
}

// AgeParams parameterizes a mission aging analysis.
type AgeParams struct {
	// Years is the mission length; TempK the junction temperature.
	Years float64 `json:"years"`
	TempK float64 `json:"temp_k"`
	// Checkpoints is the number of log-spaced trajectory points.
	Checkpoints int `json:"checkpoints,omitempty"`
}

// MCParams parameterizes a Monte-Carlo mismatch analysis.
type MCParams struct {
	// Trials is the number of dies; Node the monitored node voltage.
	Trials int    `json:"trials"`
	Node   string `json:"node"`
	// Lo/Hi bound the yield spec; nil means unbounded on that side
	// (JSON cannot carry ±Inf).
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
	// Batch is the number of consecutive trials evaluated on one parsed
	// deck before it is re-parsed (1 disables reuse; ApplyDefaults picks
	// 32). It is an execution knob: results are bit-identical for any
	// value, so CanonicalHash excludes it and two submissions differing
	// only in batch share a cache entry.
	Batch int `json:"batch,omitempty"`
	// Shards splits the campaign into that many trial-range sub-jobs
	// executed concurrently (locally or on peer servers) and scatter-
	// gathered into one result. Like Batch it is an execution knob —
	// mean/std/yield are bit-identical for any shard count and quantiles
	// stay within the sketch's rank-error bound — so CanonicalHash
	// excludes it. 0 or 1 means unsharded.
	Shards int `json:"shards,omitempty"`
	// Range restricts execution to a chunk-aligned trial sub-range of the
	// campaign grid — the form a shard sub-job takes. Unlike Shards it IS
	// part of CanonicalHash: a sub-range is different work, not a
	// different way of running the same work. Trials stays the TOTAL
	// campaign count (it defines the grid and every trial's RNG stream);
	// Range selects which slice of it this execution computes.
	Range *TrialRange `json:"range,omitempty"`
	// Corner pins the campaign to one named global process corner: every
	// trial's sampled local mismatch rides on top of the corner's
	// deterministic per-polarity ΔVT/β shift. Like Range it IS part of
	// CanonicalHash — Monte-Carlo at SS is different work than at TT.
	// nil means nominal (no global shift), the pre-v2 behaviour.
	Corner *CornerShift `json:"corner,omitempty"`
}

// CornerShift names the global process corner a Monte-Carlo campaign is
// pinned to (see variation.StandardCorners) and the 3σ levels that define
// it. The signoff campaign uses it to re-run yield at the worst corner
// found by the corner sweep.
type CornerShift struct {
	// Name is one of TT, SS, FF, SF, FS.
	Name string `json:"name"`
	// SigmaVT [V] and SigmaBeta (fractional) set the 3σ corner levels;
	// ApplyDefaults picks 0.03 V and 0.08, matching the corners analysis.
	SigmaVT   float64 `json:"sigma_vt,omitempty"`
	SigmaBeta float64 `json:"sigma_beta,omitempty"`
}

// TrialRange is a half-open global trial range [From, To) on the
// campaign chunk grid (see variation.ChunkSize).
type TrialRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// SpecLo returns the lower spec bound (-Inf when unset).
func (p *MCParams) SpecLo() float64 {
	if p == nil || p.Lo == nil {
		return math.Inf(-1)
	}
	return *p.Lo
}

// SpecHi returns the upper spec bound (+Inf when unset).
func (p *MCParams) SpecHi() float64 {
	if p == nil || p.Hi == nil {
		return math.Inf(1)
	}
	return *p.Hi
}

// HasSpec reports whether either yield bound is set.
func (p *MCParams) HasSpec() bool { return p != nil && (p.Lo != nil || p.Hi != nil) }

// CornersParams parameterizes a global-corner sweep.
type CornersParams struct {
	// Node is the monitored node voltage.
	Node string `json:"node"`
	// SigmaVT [V] and SigmaBeta (fractional) set the 3σ corner levels.
	SigmaVT   float64 `json:"sigma_vt,omitempty"`
	SigmaBeta float64 `json:"sigma_beta,omitempty"`
	// Lo/Hi bound the per-corner spec window; nil means unbounded on that
	// side (JSON cannot carry ±Inf). With at least one bound set, each
	// corner gets a pass verdict and a worst-case margin; unset keeps the
	// pre-v2 behaviour (values only, worst = largest deviation from TT).
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
}

// SpecLo returns the lower spec bound (-Inf when unset).
func (p *CornersParams) SpecLo() float64 {
	if p == nil {
		return math.Inf(-1)
	}
	return loBound(p.Lo)
}

// SpecHi returns the upper spec bound (+Inf when unset).
func (p *CornersParams) SpecHi() float64 {
	if p == nil {
		return math.Inf(1)
	}
	return hiBound(p.Hi)
}

// HasSpec reports whether either spec bound is set.
func (p *CornersParams) HasSpec() bool { return p != nil && (p.Lo != nil || p.Hi != nil) }

// loBound/hiBound resolve an optional spec bound to its unbounded
// sentinel, shared by every parameter block carrying a Lo/Hi window.
func loBound(v *float64) float64 {
	if v == nil {
		return math.Inf(-1)
	}
	return *v
}

func hiBound(v *float64) float64 {
	if v == nil {
		return math.Inf(1)
	}
	return *v
}

// CenteringParams parameterizes a design-centering run: a greedy
// coordinate search over per-device width scale factors that moves the
// sizing toward maximum yield on the monitored node (paper §4.2 — sizing
// against variability via the Pelgrom area law).
type CenteringParams struct {
	// Node is the monitored node voltage; Lo/Hi its spec window (at least
	// one bound is required — centering needs a yield to climb).
	Node string   `json:"node"`
	Lo   *float64 `json:"lo,omitempty"`
	Hi   *float64 `json:"hi,omitempty"`
	// Trials is the Monte-Carlo sample size of each candidate evaluation.
	// Every candidate in a run reuses the same seed (common random
	// numbers), so comparisons are paired and deterministic. Default 96.
	Trials int `json:"trials,omitempty"`
	// MaxIters bounds the number of accepted moves. Default 6.
	MaxIters int `json:"max_iters,omitempty"`
	// Step is the width scale factor of one move (a device is widened or
	// narrowed by this factor). Default 1.25.
	Step float64 `json:"step,omitempty"`
	// MaxScale bounds any device's cumulative width scale (and 1/MaxScale
	// its shrink), keeping the optimizer inside a plausible layout budget.
	// Default 4.
	MaxScale float64 `json:"max_scale,omitempty"`
	// Devices restricts the search to these move axes (default: every
	// MOSFET in the deck, individually). An entry is a MOSFET name or
	// several names joined by '+' ("M1+M2"): the group resizes as one
	// move, which is how matched pairs must be driven.
	Devices []string `json:"devices,omitempty"`
}

// SpecLo returns the lower spec bound (-Inf when unset).
func (p *CenteringParams) SpecLo() float64 {
	if p == nil {
		return math.Inf(-1)
	}
	return loBound(p.Lo)
}

// SpecHi returns the upper spec bound (+Inf when unset).
func (p *CenteringParams) SpecHi() float64 {
	if p == nil {
		return math.Inf(1)
	}
	return hiBound(p.Hi)
}

// HasSpec reports whether either spec bound is set.
func (p *CenteringParams) HasSpec() bool { return p != nil && (p.Lo != nil || p.Hi != nil) }

// SignoffParams parameterizes the composite signoff campaign: a DAG of
// sub-jobs (corner sweep → Monte-Carlo at the worst corner, with aging
// and electromigration roll-ups in parallel) compiled into one
// compliance report (see internal/report/signoff).
type SignoffParams struct {
	// Node is the monitored node voltage; Lo/Hi its spec window (at least
	// one bound is required — signoff judges yield against it).
	Node string   `json:"node"`
	Lo   *float64 `json:"lo,omitempty"`
	Hi   *float64 `json:"hi,omitempty"`
	// Trials is the Monte-Carlo sample size at the worst corner.
	// Default 200.
	Trials int `json:"trials,omitempty"`
	// SigmaVT [V] and SigmaBeta (fractional) set the 3σ corner levels of
	// the corner-sweep stage. Defaults 0.03 V and 0.08.
	SigmaVT   float64 `json:"sigma_vt,omitempty"`
	SigmaBeta float64 `json:"sigma_beta,omitempty"`
	// Years is the mission length and TempK the junction temperature of
	// the aging and electromigration stages. Defaults 10 years, 350 K.
	Years float64 `json:"years,omitempty"`
	TempK float64 `json:"temp_k,omitempty"`
	// TargetFIT is the failure-rate budget [failures / 10⁹ device-hours]
	// the reliability section is judged against. Default 1000.
	TargetFIT float64 `json:"target_fit,omitempty"`
}

// SpecLo returns the lower spec bound (-Inf when unset).
func (p *SignoffParams) SpecLo() float64 {
	if p == nil {
		return math.Inf(-1)
	}
	return loBound(p.Lo)
}

// SpecHi returns the upper spec bound (+Inf when unset).
func (p *SignoffParams) SpecHi() float64 {
	if p == nil {
		return math.Inf(1)
	}
	return hiBound(p.Hi)
}

// HasSpec reports whether either spec bound is set.
func (p *SignoffParams) HasSpec() bool { return p != nil && (p.Lo != nil || p.Hi != nil) }

// ApplyDefaults fills every unset field with the documented default —
// the same values the relsim flags default to — and stamps Version. It
// is idempotent and safe on specs that already carry values.
func (s *Spec) ApplyDefaults() {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if s.Analysis == "" {
		s.Analysis = KindOP
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Analysis {
	case KindTran:
		if s.Tran == nil {
			s.Tran = &TranParams{}
		}
		if s.Tran.Stop == 0 {
			s.Tran.Stop = 1e-3
		}
		if s.Tran.Step == 0 {
			s.Tran.Step = 1e-6
		}
		if s.Tran.LTETol == 0 {
			s.Tran.LTETol = 1e-3
		}
	case KindSweep:
		if s.Sweep == nil {
			s.Sweep = &SweepParams{}
		}
		if s.Sweep.Points == 0 {
			s.Sweep.Points = 11
		}
		if s.Sweep.From == 0 && s.Sweep.To == 0 {
			s.Sweep.To = 1
		}
	case KindAC:
		if s.AC == nil {
			s.AC = &ACParams{}
		}
		if s.AC.FStart == 0 {
			s.AC.FStart = 1e3
		}
		if s.AC.FStop == 0 {
			s.AC.FStop = 1e9
		}
		if s.AC.Points == 0 {
			s.AC.Points = 31
		}
	case KindAge:
		if s.Age == nil {
			s.Age = &AgeParams{}
		}
		if s.Age.Years == 0 {
			s.Age.Years = 10
		}
		if s.Age.TempK == 0 {
			s.Age.TempK = 350
		}
		if s.Age.Checkpoints == 0 {
			s.Age.Checkpoints = 10
		}
	case KindMC:
		if s.MC == nil {
			s.MC = &MCParams{}
		}
		if s.MC.Trials == 0 {
			s.MC.Trials = 200
		}
		if s.MC.Batch == 0 {
			s.MC.Batch = 32
		}
		if c := s.MC.Corner; c != nil {
			if c.SigmaVT == 0 {
				c.SigmaVT = 0.03
			}
			if c.SigmaBeta == 0 {
				c.SigmaBeta = 0.08
			}
		}
	case KindCorners:
		if s.Corners == nil {
			s.Corners = &CornersParams{}
		}
		if s.Corners.SigmaVT == 0 {
			s.Corners.SigmaVT = 0.03
		}
		if s.Corners.SigmaBeta == 0 {
			s.Corners.SigmaBeta = 0.08
		}
	case KindCentering:
		if s.Centering == nil {
			s.Centering = &CenteringParams{}
		}
		if s.Centering.Trials == 0 {
			s.Centering.Trials = 96
		}
		if s.Centering.MaxIters == 0 {
			s.Centering.MaxIters = 6
		}
		if s.Centering.Step == 0 {
			s.Centering.Step = 1.25
		}
		if s.Centering.MaxScale == 0 {
			s.Centering.MaxScale = 4
		}
	case KindSignoff:
		if s.Signoff == nil {
			s.Signoff = &SignoffParams{}
		}
		if s.Signoff.Trials == 0 {
			s.Signoff.Trials = 200
		}
		if s.Signoff.SigmaVT == 0 {
			s.Signoff.SigmaVT = 0.03
		}
		if s.Signoff.SigmaBeta == 0 {
			s.Signoff.SigmaBeta = 0.08
		}
		if s.Signoff.Years == 0 {
			s.Signoff.Years = 10
		}
		if s.Signoff.TempK == 0 {
			s.Signoff.TempK = 350
		}
		if s.Signoff.TargetFIT == 0 {
			s.Signoff.TargetFIT = 1000
		}
	}
}

// CanonicalHash returns the spec's content address: the hex SHA-256 of
// its canonical JSON encoding with the execution-only fields cleared —
// NoCache (cache control), MC.Batch (deck-reuse chunking) and MC.Shards
// (scatter-gather fan-out), none of which changes a result. Everything
// that influences an execution's outcome — version, analysis kind,
// netlist text, record list, seed, timeout and the parameter blocks,
// including MC.Range (a trial sub-range is different work) — is part of
// the hash; two specs with equal hashes describe the same deterministic
// computation, which is what makes the hash usable as a result-cache
// key. Call ApplyDefaults first so that a sparse document and its
// fully-explicit twin hash identically.
func (s *Spec) CanonicalHash() string {
	c := *s
	c.NoCache = false
	if c.MC != nil && (c.MC.Batch != 0 || c.MC.Shards != 0) {
		mc := *c.MC
		mc.Batch = 0
		mc.Shards = 0
		c.MC = &mc
	}
	// Spec marshals deterministically: fixed struct field order, no maps,
	// and Duration's string form. Marshal cannot fail on this shape.
	b, err := json.Marshal(&c)
	if err != nil {
		// Unreachable for a Spec, but never let a hash collide on error.
		return "unhashable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks the spec for executability. It does not parse the
// netlist — deck errors surface from Execute — but it catches every
// structural mistake: unknown kind, missing netlist source, missing or
// out-of-range parameters. Call ApplyDefaults first unless every field
// is explicit.
func (s *Spec) Validate() error {
	if s.Version < 0 || s.Version > SpecVersion {
		return fmt.Errorf("jobspec: unsupported spec version %d (max %d)", s.Version, SpecVersion)
	}
	switch s.Analysis {
	case KindOP, KindTran, KindSweep, KindAC, KindAge, KindMC, KindCorners,
		KindCentering, KindSignoff:
	default:
		return &ErrUnknownAnalysis{Kind: s.Analysis}
	}
	if s.Netlist == "" && s.NetlistFile == "" {
		return fmt.Errorf("jobspec: spec needs a netlist (inline or file)")
	}
	if s.Timeout < 0 {
		return fmt.Errorf("jobspec: negative timeout %s", time.Duration(s.Timeout))
	}
	switch s.Analysis {
	case KindTran:
		if s.Tran == nil || s.Tran.Stop <= 0 || s.Tran.Step <= 0 {
			return fmt.Errorf("jobspec: tran needs stop > 0 and step > 0")
		}
		if s.Tran.Adaptive && s.Tran.LTETol <= 0 {
			return fmt.Errorf("jobspec: adaptive tran needs lte_tol > 0")
		}
	case KindSweep:
		if s.Sweep == nil || s.Sweep.Source == "" {
			return fmt.Errorf("jobspec: sweep needs a source")
		}
		if s.Sweep.Points < 2 {
			return fmt.Errorf("jobspec: sweep needs points >= 2")
		}
	case KindAC:
		if s.AC == nil || s.AC.Source == "" {
			return fmt.Errorf("jobspec: ac needs a source")
		}
		if s.AC.Points < 2 || s.AC.FStart <= 0 || s.AC.FStop <= s.AC.FStart {
			return fmt.Errorf("jobspec: ac needs 0 < fstart < fstop and points >= 2")
		}
	case KindAge:
		if s.Age == nil || s.Age.Years <= 0 || s.Age.TempK <= 0 || s.Age.Checkpoints < 1 {
			return fmt.Errorf("jobspec: age needs years > 0, temp_k > 0 and checkpoints >= 1")
		}
	case KindMC:
		if s.MC == nil || s.MC.Node == "" {
			return fmt.Errorf("jobspec: mc needs a node")
		}
		if s.MC.Trials < 1 {
			return fmt.Errorf("jobspec: mc needs trials >= 1")
		}
		if s.MC.Batch < 0 {
			return fmt.Errorf("jobspec: mc needs batch >= 1 (0 selects the default)")
		}
		if s.MC.Lo != nil && s.MC.Hi != nil && *s.MC.Lo > *s.MC.Hi {
			return fmt.Errorf("jobspec: mc spec lo %g above hi %g", *s.MC.Lo, *s.MC.Hi)
		}
		if s.MC.Shards < 0 {
			return fmt.Errorf("jobspec: mc needs shards >= 0 (0 or 1 means unsharded)")
		}
		if r := s.MC.Range; r != nil {
			if s.MC.Shards > 1 {
				return fmt.Errorf("jobspec: mc range and shards > 1 are mutually exclusive (a shard sub-job cannot itself shard)")
			}
			if r.From < 0 || r.To <= r.From || r.To > s.MC.Trials {
				return fmt.Errorf("jobspec: mc range [%d,%d) outside [0,%d)", r.From, r.To, s.MC.Trials)
			}
			cs := variation.ChunkSize(s.MC.Trials)
			if r.From%cs != 0 || (r.To%cs != 0 && r.To != s.MC.Trials) {
				return fmt.Errorf("jobspec: mc range [%d,%d) not aligned to the %d-trial chunk grid", r.From, r.To, cs)
			}
		}
		if c := s.MC.Corner; c != nil {
			if !validCornerName(c.Name) {
				return fmt.Errorf("jobspec: mc corner %q (want one of TT, SS, FF, SF, FS)", c.Name)
			}
			if c.SigmaVT < 0 || c.SigmaBeta < 0 {
				return fmt.Errorf("jobspec: mc corner needs sigma_vt >= 0 and sigma_beta >= 0")
			}
		}
	case KindCorners:
		if s.Corners == nil || s.Corners.Node == "" {
			return fmt.Errorf("jobspec: corners needs a node")
		}
		if s.Corners.Lo != nil && s.Corners.Hi != nil && *s.Corners.Lo > *s.Corners.Hi {
			return fmt.Errorf("jobspec: corners spec lo %g above hi %g", *s.Corners.Lo, *s.Corners.Hi)
		}
	case KindCentering:
		p := s.Centering
		if p == nil || p.Node == "" {
			return fmt.Errorf("jobspec: centering needs a node")
		}
		if !p.HasSpec() {
			return fmt.Errorf("jobspec: centering needs a spec bound (lo and/or hi) — it optimizes yield against it")
		}
		if p.Lo != nil && p.Hi != nil && *p.Lo > *p.Hi {
			return fmt.Errorf("jobspec: centering spec lo %g above hi %g", *p.Lo, *p.Hi)
		}
		if p.Trials < 1 || p.MaxIters < 1 {
			return fmt.Errorf("jobspec: centering needs trials >= 1 and max_iters >= 1")
		}
		if p.Step <= 1 {
			return fmt.Errorf("jobspec: centering needs step > 1 (a width scale factor)")
		}
		if p.MaxScale < p.Step {
			return fmt.Errorf("jobspec: centering needs max_scale >= step")
		}
	case KindSignoff:
		p := s.Signoff
		if p == nil || p.Node == "" {
			return fmt.Errorf("jobspec: signoff needs a node")
		}
		if !p.HasSpec() {
			return fmt.Errorf("jobspec: signoff needs a spec bound (lo and/or hi) — it judges yield against it")
		}
		if p.Lo != nil && p.Hi != nil && *p.Lo > *p.Hi {
			return fmt.Errorf("jobspec: signoff spec lo %g above hi %g", *p.Lo, *p.Hi)
		}
		if p.Trials < 1 {
			return fmt.Errorf("jobspec: signoff needs trials >= 1")
		}
		if p.Years <= 0 || p.TempK <= 0 {
			return fmt.Errorf("jobspec: signoff needs years > 0 and temp_k > 0")
		}
		if p.TargetFIT <= 0 {
			return fmt.Errorf("jobspec: signoff needs target_fit > 0")
		}
	}
	return nil
}

// validCornerName reports whether name is one of the five standard
// global corners.
func validCornerName(name string) bool {
	switch name {
	case "TT", "SS", "FF", "SF", "FS":
		return true
	}
	return false
}
