// Package jobspec defines the versioned, JSON-serializable description of
// one reliability analysis — the unit of work of this reproduction. The
// paper's resilience loop (§5.2) assumes reliability analyses run as
// continuous, parameterized campaigns rather than ad-hoc batch
// invocations; a campaign needs a stable wire format for "run this
// analysis on this netlist with these parameters". A Spec captures
// exactly that (analysis kind, netlist source, parameters, seed, wall
// budget), a Result captures the structured outcome, and Execute runs the
// one through the other — the single dispatch path behind both the relsim
// command line and the internal/serve HTTP job service, so a flag-driven
// one-shot run and a POSTed server job execute the identical struct.
package jobspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/variation"
)

// SpecVersion is the current schema version. Version 0 in an incoming
// document means "unversioned, oldest" and is upgraded to 1 by
// ApplyDefaults; versions above SpecVersion are rejected by Validate so
// an old server never silently misreads a newer client's spec.
const SpecVersion = 1

// Kind names one analysis.
type Kind string

// The supported analysis kinds. They mirror relsim's -analysis values.
const (
	KindOP      Kind = "op"      // DC operating point
	KindTran    Kind = "tran"    // transient (fixed or adaptive step)
	KindSweep   Kind = "sweep"   // DC source sweep
	KindAC      Kind = "ac"      // small-signal frequency sweep
	KindAge     Kind = "age"     // NBTI/HCI/TDDB mission aging
	KindMC      Kind = "mc"      // Monte-Carlo mismatch
	KindCorners Kind = "corners" // TT/SS/FF/SF/FS global corners
)

// Kinds lists every valid analysis kind in documentation order.
func Kinds() []Kind {
	return []Kind{KindOP, KindTran, KindSweep, KindAC, KindAge, KindMC, KindCorners}
}

// ErrUnknownAnalysis tags validation failures caused by an unrecognised
// analysis kind, so the CLI can turn exactly that mistake into usage +
// exit 2 while other validation errors stay ordinary failures.
type ErrUnknownAnalysis struct{ Kind Kind }

func (e *ErrUnknownAnalysis) Error() string {
	return fmt.Sprintf("jobspec: unknown analysis %q (want one of %v)", e.Kind, Kinds())
}

// Duration is a time.Duration that marshals to/from the Go duration
// string ("30s", "1m30s") so specs stay readable on the wire.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a number of
// nanoseconds (the encoding a naive client produces).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobspec: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("jobspec: duration must be a string or integer nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// Spec is one fully-parameterized analysis request. The zero value plus
// Analysis and a netlist source is a valid request after ApplyDefaults.
type Spec struct {
	// Version is the schema version (see SpecVersion). 0 means "default".
	Version int `json:"version"`
	// Analysis selects the engine.
	Analysis Kind `json:"analysis"`
	// Netlist is the inline SPICE-flavoured deck text. It takes priority
	// over NetlistFile and is the only source the HTTP server accepts.
	Netlist string `json:"netlist,omitempty"`
	// NetlistFile names a local file to read when Netlist is empty
	// (CLI convenience; rejected by the job server).
	NetlistFile string `json:"netlist_file,omitempty"`
	// Record lists the nodes to report (empty = analysis-specific default,
	// usually every node).
	Record []string `json:"record,omitempty"`
	// Seed fixes the RNG for mc and age. A sparse document may omit it
	// (or carry 0): ApplyDefaults rewrites 0 to 1, so an unseeded
	// submission is deterministic rather than irreproducible. The seed a
	// run actually used is echoed back in Result.Seed, so a client that
	// submitted without an explicit seed can still reproduce the run.
	Seed uint64 `json:"seed,omitempty"`
	// NoCache opts this submission out of the server's spec-keyed result
	// cache: it is neither answered from the cache nor entered into it.
	// The field is excluded from CanonicalHash, so a no_cache run of a
	// spec does not perturb the cache key of its cacheable twin.
	NoCache bool `json:"no_cache,omitempty"`
	// Timeout bounds the analysis wall clock; on expiry mc and age report
	// the completed portion as a partial result. 0 = unbounded.
	Timeout Duration `json:"timeout,omitempty"`

	// Exactly the parameter block matching Analysis is consulted; the
	// others may be nil.
	Tran    *TranParams    `json:"tran,omitempty"`
	Sweep   *SweepParams   `json:"sweep,omitempty"`
	AC      *ACParams      `json:"ac,omitempty"`
	Age     *AgeParams     `json:"age,omitempty"`
	MC      *MCParams      `json:"mc,omitempty"`
	Corners *CornersParams `json:"corners,omitempty"`
}

// TranParams parameterizes a transient analysis.
type TranParams struct {
	// Stop is the end time [s]; Step the fixed step (or minimum step when
	// Adaptive) [s].
	Stop float64 `json:"stop"`
	Step float64 `json:"step"`
	// Adaptive selects LTE-controlled variable stepping with tolerance
	// LTETol [V].
	Adaptive bool    `json:"adaptive,omitempty"`
	LTETol   float64 `json:"lte_tol,omitempty"`
}

// SweepParams parameterizes a DC sweep.
type SweepParams struct {
	// Source is the swept source element.
	Source string  `json:"source"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
}

// ACParams parameterizes a small-signal frequency sweep.
type ACParams struct {
	// Source is stimulated with ACMag = 1.
	Source string  `json:"source"`
	FStart float64 `json:"fstart"`
	FStop  float64 `json:"fstop"`
	Points int     `json:"points"`
}

// AgeParams parameterizes a mission aging analysis.
type AgeParams struct {
	// Years is the mission length; TempK the junction temperature.
	Years float64 `json:"years"`
	TempK float64 `json:"temp_k"`
	// Checkpoints is the number of log-spaced trajectory points.
	Checkpoints int `json:"checkpoints,omitempty"`
}

// MCParams parameterizes a Monte-Carlo mismatch analysis.
type MCParams struct {
	// Trials is the number of dies; Node the monitored node voltage.
	Trials int    `json:"trials"`
	Node   string `json:"node"`
	// Lo/Hi bound the yield spec; nil means unbounded on that side
	// (JSON cannot carry ±Inf).
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
	// Batch is the number of consecutive trials evaluated on one parsed
	// deck before it is re-parsed (1 disables reuse; ApplyDefaults picks
	// 32). It is an execution knob: results are bit-identical for any
	// value, so CanonicalHash excludes it and two submissions differing
	// only in batch share a cache entry.
	Batch int `json:"batch,omitempty"`
	// Shards splits the campaign into that many trial-range sub-jobs
	// executed concurrently (locally or on peer servers) and scatter-
	// gathered into one result. Like Batch it is an execution knob —
	// mean/std/yield are bit-identical for any shard count and quantiles
	// stay within the sketch's rank-error bound — so CanonicalHash
	// excludes it. 0 or 1 means unsharded.
	Shards int `json:"shards,omitempty"`
	// Range restricts execution to a chunk-aligned trial sub-range of the
	// campaign grid — the form a shard sub-job takes. Unlike Shards it IS
	// part of CanonicalHash: a sub-range is different work, not a
	// different way of running the same work. Trials stays the TOTAL
	// campaign count (it defines the grid and every trial's RNG stream);
	// Range selects which slice of it this execution computes.
	Range *TrialRange `json:"range,omitempty"`
}

// TrialRange is a half-open global trial range [From, To) on the
// campaign chunk grid (see variation.ChunkSize).
type TrialRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// SpecLo returns the lower spec bound (-Inf when unset).
func (p *MCParams) SpecLo() float64 {
	if p == nil || p.Lo == nil {
		return math.Inf(-1)
	}
	return *p.Lo
}

// SpecHi returns the upper spec bound (+Inf when unset).
func (p *MCParams) SpecHi() float64 {
	if p == nil || p.Hi == nil {
		return math.Inf(1)
	}
	return *p.Hi
}

// HasSpec reports whether either yield bound is set.
func (p *MCParams) HasSpec() bool { return p != nil && (p.Lo != nil || p.Hi != nil) }

// CornersParams parameterizes a global-corner sweep.
type CornersParams struct {
	// Node is the monitored node voltage.
	Node string `json:"node"`
	// SigmaVT [V] and SigmaBeta (fractional) set the 3σ corner levels.
	SigmaVT   float64 `json:"sigma_vt,omitempty"`
	SigmaBeta float64 `json:"sigma_beta,omitempty"`
}

// ApplyDefaults fills every unset field with the documented default —
// the same values the relsim flags default to — and stamps Version. It
// is idempotent and safe on specs that already carry values.
func (s *Spec) ApplyDefaults() {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if s.Analysis == "" {
		s.Analysis = KindOP
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Analysis {
	case KindTran:
		if s.Tran == nil {
			s.Tran = &TranParams{}
		}
		if s.Tran.Stop == 0 {
			s.Tran.Stop = 1e-3
		}
		if s.Tran.Step == 0 {
			s.Tran.Step = 1e-6
		}
		if s.Tran.LTETol == 0 {
			s.Tran.LTETol = 1e-3
		}
	case KindSweep:
		if s.Sweep == nil {
			s.Sweep = &SweepParams{}
		}
		if s.Sweep.Points == 0 {
			s.Sweep.Points = 11
		}
		if s.Sweep.From == 0 && s.Sweep.To == 0 {
			s.Sweep.To = 1
		}
	case KindAC:
		if s.AC == nil {
			s.AC = &ACParams{}
		}
		if s.AC.FStart == 0 {
			s.AC.FStart = 1e3
		}
		if s.AC.FStop == 0 {
			s.AC.FStop = 1e9
		}
		if s.AC.Points == 0 {
			s.AC.Points = 31
		}
	case KindAge:
		if s.Age == nil {
			s.Age = &AgeParams{}
		}
		if s.Age.Years == 0 {
			s.Age.Years = 10
		}
		if s.Age.TempK == 0 {
			s.Age.TempK = 350
		}
		if s.Age.Checkpoints == 0 {
			s.Age.Checkpoints = 10
		}
	case KindMC:
		if s.MC == nil {
			s.MC = &MCParams{}
		}
		if s.MC.Trials == 0 {
			s.MC.Trials = 200
		}
		if s.MC.Batch == 0 {
			s.MC.Batch = 32
		}
	case KindCorners:
		if s.Corners == nil {
			s.Corners = &CornersParams{}
		}
		if s.Corners.SigmaVT == 0 {
			s.Corners.SigmaVT = 0.03
		}
		if s.Corners.SigmaBeta == 0 {
			s.Corners.SigmaBeta = 0.08
		}
	}
}

// CanonicalHash returns the spec's content address: the hex SHA-256 of
// its canonical JSON encoding with the execution-only fields cleared —
// NoCache (cache control), MC.Batch (deck-reuse chunking) and MC.Shards
// (scatter-gather fan-out), none of which changes a result. Everything
// that influences an execution's outcome — version, analysis kind,
// netlist text, record list, seed, timeout and the parameter blocks,
// including MC.Range (a trial sub-range is different work) — is part of
// the hash; two specs with equal hashes describe the same deterministic
// computation, which is what makes the hash usable as a result-cache
// key. Call ApplyDefaults first so that a sparse document and its
// fully-explicit twin hash identically.
func (s *Spec) CanonicalHash() string {
	c := *s
	c.NoCache = false
	if c.MC != nil && (c.MC.Batch != 0 || c.MC.Shards != 0) {
		mc := *c.MC
		mc.Batch = 0
		mc.Shards = 0
		c.MC = &mc
	}
	// Spec marshals deterministically: fixed struct field order, no maps,
	// and Duration's string form. Marshal cannot fail on this shape.
	b, err := json.Marshal(&c)
	if err != nil {
		// Unreachable for a Spec, but never let a hash collide on error.
		return "unhashable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks the spec for executability. It does not parse the
// netlist — deck errors surface from Execute — but it catches every
// structural mistake: unknown kind, missing netlist source, missing or
// out-of-range parameters. Call ApplyDefaults first unless every field
// is explicit.
func (s *Spec) Validate() error {
	if s.Version < 0 || s.Version > SpecVersion {
		return fmt.Errorf("jobspec: unsupported spec version %d (max %d)", s.Version, SpecVersion)
	}
	switch s.Analysis {
	case KindOP, KindTran, KindSweep, KindAC, KindAge, KindMC, KindCorners:
	default:
		return &ErrUnknownAnalysis{Kind: s.Analysis}
	}
	if s.Netlist == "" && s.NetlistFile == "" {
		return fmt.Errorf("jobspec: spec needs a netlist (inline or file)")
	}
	if s.Timeout < 0 {
		return fmt.Errorf("jobspec: negative timeout %s", time.Duration(s.Timeout))
	}
	switch s.Analysis {
	case KindTran:
		if s.Tran == nil || s.Tran.Stop <= 0 || s.Tran.Step <= 0 {
			return fmt.Errorf("jobspec: tran needs stop > 0 and step > 0")
		}
		if s.Tran.Adaptive && s.Tran.LTETol <= 0 {
			return fmt.Errorf("jobspec: adaptive tran needs lte_tol > 0")
		}
	case KindSweep:
		if s.Sweep == nil || s.Sweep.Source == "" {
			return fmt.Errorf("jobspec: sweep needs a source")
		}
		if s.Sweep.Points < 2 {
			return fmt.Errorf("jobspec: sweep needs points >= 2")
		}
	case KindAC:
		if s.AC == nil || s.AC.Source == "" {
			return fmt.Errorf("jobspec: ac needs a source")
		}
		if s.AC.Points < 2 || s.AC.FStart <= 0 || s.AC.FStop <= s.AC.FStart {
			return fmt.Errorf("jobspec: ac needs 0 < fstart < fstop and points >= 2")
		}
	case KindAge:
		if s.Age == nil || s.Age.Years <= 0 || s.Age.TempK <= 0 || s.Age.Checkpoints < 1 {
			return fmt.Errorf("jobspec: age needs years > 0, temp_k > 0 and checkpoints >= 1")
		}
	case KindMC:
		if s.MC == nil || s.MC.Node == "" {
			return fmt.Errorf("jobspec: mc needs a node")
		}
		if s.MC.Trials < 1 {
			return fmt.Errorf("jobspec: mc needs trials >= 1")
		}
		if s.MC.Batch < 0 {
			return fmt.Errorf("jobspec: mc needs batch >= 1 (0 selects the default)")
		}
		if s.MC.Lo != nil && s.MC.Hi != nil && *s.MC.Lo > *s.MC.Hi {
			return fmt.Errorf("jobspec: mc spec lo %g above hi %g", *s.MC.Lo, *s.MC.Hi)
		}
		if s.MC.Shards < 0 {
			return fmt.Errorf("jobspec: mc needs shards >= 0 (0 or 1 means unsharded)")
		}
		if r := s.MC.Range; r != nil {
			if s.MC.Shards > 1 {
				return fmt.Errorf("jobspec: mc range and shards > 1 are mutually exclusive (a shard sub-job cannot itself shard)")
			}
			if r.From < 0 || r.To <= r.From || r.To > s.MC.Trials {
				return fmt.Errorf("jobspec: mc range [%d,%d) outside [0,%d)", r.From, r.To, s.MC.Trials)
			}
			cs := variation.ChunkSize(s.MC.Trials)
			if r.From%cs != 0 || (r.To%cs != 0 && r.To != s.MC.Trials) {
				return fmt.Errorf("jobspec: mc range [%d,%d) not aligned to the %d-trial chunk grid", r.From, r.To, cs)
			}
		}
	case KindCorners:
		if s.Corners == nil || s.Corners.Node == "" {
			return fmt.Errorf("jobspec: corners needs a node")
		}
	}
	return nil
}
