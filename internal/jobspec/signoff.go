package jobspec

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/aging"
	"repro/internal/campaign"
	"repro/internal/em"
	"repro/internal/netlist"
	"repro/internal/report/signoff"
	"repro/internal/variation"
)

// SignoffNodes is the number of DAG nodes in a signoff campaign — the
// resume-unit count the job server reports for a restored signoff job
// (checkpoint Seq values are node indices in [0, SignoffNodes)).
const SignoffNodes = 4

// ResumeUnits returns the number of durable checkpoint units an
// execution of this spec can emit: Monte-Carlo campaign grid chunks,
// signoff DAG nodes, zero for everything else. The job server uses it
// as the Total of a restored job's resume accounting.
func (s *Spec) ResumeUnits() int {
	switch s.Analysis {
	case KindMC:
		if s.MC != nil {
			return variation.NumChunks(s.MC.Trials)
		}
	case KindSignoff:
		return SignoffNodes
	}
	return 0
}

// subjobCheckpoint is the durable record of one completed signoff DAG
// node: the node name, the sub-spec's canonical hash (empty for the
// inline wear-out node) and the node's marshalled result. Hash is
// verified on restore, so a checkpoint journaled for a different
// campaign fails loudly instead of silently seeding wrong sections.
type subjobCheckpoint struct {
	Name   string          `json:"name"`
	Hash   string          `json:"hash,omitempty"`
	Result json.RawMessage `json:"result"`
}

// subOut is a signoff DAG node's in-memory value: either a sub-job
// Result (corners/mc/age) or the inline wear-out roll-up, plus the
// provenance bits the report records.
type subOut struct {
	res      *Result
	wear     *wearOut
	hash     string
	analysis Kind
	cached   bool
	resumed  bool
}

// wearOut is the inline EM+TDDB roll-up's checkpointable value.
// LambdaPerHour is the combined wear-out failure rate (0 when every
// channel is unbounded).
type wearOut struct {
	EM            *signoff.EMSection   `json:"em,omitempty"`
	TDDB          *signoff.TDDBSection `json:"tddb,omitempty"`
	LambdaPerHour float64              `json:"lambda_per_hour"`
}

// executeSignoff runs the composite signoff campaign: a DAG of sub-jobs
// (corner sweep → Monte-Carlo at the worst corner, with the aging and
// wear-out roll-ups alongside) compiled into one deterministic
// compliance report. Sub-jobs execute through Options.RunSub when set —
// the job server's cache-aware path — and in-process otherwise; each
// completed node is checkpointed through Options.OnCheckpoint so a
// killed campaign resumes from its completed sub-jobs.
func executeSignoff(ctx context.Context, text string, deck *netlist.Deck, spec *Spec, res *Result, opts Options) error {
	p := spec.Signoff

	runSub := opts.RunSub
	if runSub == nil {
		runSub = func(ctx context.Context, _ string, sub *Spec) (*Result, bool, error) {
			r, err := ExecuteOpts(ctx, sub, Options{})
			return r, false, err
		}
	}

	// Journaled checkpoints from a previous execution of this spec. A
	// payload without a node name is not a signoff checkpoint at all.
	restored := make(map[string]subjobCheckpoint, len(opts.Resume))
	for _, raw := range opts.Resume {
		var cp subjobCheckpoint
		if err := json.Unmarshal(raw, &cp); err != nil {
			return fmt.Errorf("jobspec: decoding signoff checkpoint: %w", err)
		}
		if cp.Name == "" {
			return fmt.Errorf("jobspec: signoff checkpoint without a node name — checkpoint from a different campaign?")
		}
		if _, dup := restored[cp.Name]; dup {
			continue // journals can carry rewrites; the first record wins
		}
		restored[cp.Name] = cp
	}

	// restore returns the checkpointed Result for a node whose sub-spec
	// hashes to wantHash; a hash mismatch is a loud error, never a merge.
	restore := func(name, wantHash string) (*Result, bool, error) {
		cp, ok := restored[name]
		if !ok {
			return nil, false, nil
		}
		if cp.Hash != wantHash {
			return nil, false, fmt.Errorf("jobspec: signoff checkpoint %q hash %.12s does not match sub-spec %.12s — checkpoint from a different campaign?",
				name, cp.Hash, wantHash)
		}
		var r Result
		if err := json.Unmarshal(cp.Result, &r); err != nil {
			return nil, false, fmt.Errorf("jobspec: decoding signoff checkpoint %q: %w", name, err)
		}
		return &r, true, nil
	}

	// subSpec derives a sub-job's Spec. The netlist text is ALWAYS
	// inlined — even when the parent spec named a file — so the sub-spec's
	// canonical hash (and therefore the report's provenance and cache
	// keys) is identical whether the campaign ran through the CLI or the
	// job server.
	subSpec := func(kind Kind) *Spec {
		return &Spec{
			Version:  SpecVersion,
			Analysis: kind,
			Netlist:  text,
			Seed:     spec.Seed,
			NoCache:  spec.NoCache,
		}
	}

	// runJob resolves one sub-job node: restore from checkpoint, or
	// execute through the RunSub hook. A partial sub-result is a node
	// failure — a compliance report cannot stand on truncated numbers.
	runJob := func(ctx context.Context, name string, sub *Spec) (*subOut, error) {
		sub.ApplyDefaults()
		hash := sub.CanonicalHash()
		if r, ok, err := restore(name, hash); err != nil {
			return nil, err
		} else if ok {
			return &subOut{res: r, hash: hash, analysis: sub.Analysis, resumed: true}, nil
		}
		r, cached, err := runSub(ctx, name, sub)
		if err != nil {
			return nil, fmt.Errorf("sub-job %s: %w", name, err)
		}
		if r == nil {
			return nil, fmt.Errorf("sub-job %s returned no result", name)
		}
		if r.Partial {
			return nil, fmt.Errorf("sub-job %s was cut short: %s", name, r.Warning)
		}
		return &subOut{res: r, hash: hash, analysis: sub.Analysis, cached: cached}, nil
	}

	nodes := []campaign.Node{
		{Name: "corners", Run: func(ctx context.Context, _ map[string]any) (any, error) {
			sub := subSpec(KindCorners)
			sub.Corners = &CornersParams{
				Node: p.Node, SigmaVT: p.SigmaVT, SigmaBeta: p.SigmaBeta,
				Lo: p.Lo, Hi: p.Hi,
			}
			return runJob(ctx, "corners", sub)
		}},
		{Name: "mc", Deps: []string{"corners"}, Run: func(ctx context.Context, deps map[string]any) (any, error) {
			co, _ := deps["corners"].(*subOut)
			if co == nil || co.res.Corners == nil || co.res.Corners.Worst == "" {
				return nil, fmt.Errorf("sub-job corners produced no worst-case corner")
			}
			sub := subSpec(KindMC)
			sub.MC = &MCParams{
				Trials: p.Trials, Node: p.Node, Lo: p.Lo, Hi: p.Hi,
				Corner: &CornerShift{Name: co.res.Corners.Worst, SigmaVT: p.SigmaVT, SigmaBeta: p.SigmaBeta},
			}
			return runJob(ctx, "mc", sub)
		}},
		{Name: "age", Run: func(ctx context.Context, _ map[string]any) (any, error) {
			sub := subSpec(KindAge)
			sub.Age = &AgeParams{Years: p.Years, TempK: p.TempK}
			return runJob(ctx, "age", sub)
		}},
		{Name: "wearout", Run: func(ctx context.Context, _ map[string]any) (any, error) {
			if cp, ok := restored["wearout"]; ok {
				if cp.Hash != "" {
					return nil, fmt.Errorf("jobspec: signoff checkpoint %q carries sub-spec hash %.12s — checkpoint from a different campaign?",
						"wearout", cp.Hash)
				}
				var w wearOut
				if err := json.Unmarshal(cp.Result, &w); err != nil {
					return nil, fmt.Errorf("jobspec: decoding signoff checkpoint %q: %w", "wearout", err)
				}
				return &subOut{wear: &w, resumed: true}, nil
			}
			w, err := wearOutRollup(deck, p)
			if err != nil {
				return nil, err
			}
			return &subOut{wear: w}, nil
		}},
	}
	nodeIndex := make(map[string]int, len(nodes))
	for i, n := range nodes {
		nodeIndex[n.Name] = i
	}

	done := 0
	graph, runErr := campaign.Run(ctx, nodes, campaign.Options{
		// OnDone is serialized by the campaign coordinator, so progress
		// and checkpoint emission need no locking here.
		OnDone: func(o *campaign.Outcome) {
			done++
			if opts.OnProgress != nil {
				opts.OnProgress(Progress{Stage: "subjob", Done: done, Total: SignoffNodes})
			}
			so, _ := o.Value.(*subOut)
			if opts.OnCheckpoint == nil || !o.OK() || so == nil || so.resumed {
				return
			}
			cp := subjobCheckpoint{Name: o.Name, Hash: so.hash}
			var err error
			if so.wear != nil {
				cp.Result, err = json.Marshal(so.wear)
			} else {
				cp.Result, err = json.Marshal(so.res)
			}
			if err != nil {
				return // results always marshal; never fail the campaign on it
			}
			b, err := json.Marshal(cp)
			if err != nil {
				return
			}
			opts.OnCheckpoint(Checkpoint{Stage: "subjob", Seq: nodeIndex[o.Name], Data: b})
		},
	})
	if runErr != nil {
		if graph == nil {
			return runErr
		}
		res.Partial = true
		res.Warning = runErr.Error()
	}

	res.Signoff = assembleReport(deck, p, nodes, graph, res)
	return nil
}

// assembleReport compiles the DAG outcomes into the compliance report.
// Assembly is not itself a DAG node: it is pure, cheap and deterministic,
// so re-running it on resume costs nothing. Failed or skipped nodes
// leave their section nil and mark the run partial with a violation.
func assembleReport(deck *netlist.Deck, p *SignoffParams, nodes []campaign.Node, graph *campaign.Result, res *Result) *signoff.Report {
	rep := &signoff.Report{
		SchemaVersion: signoff.SchemaVersion,
		Circuit:       deck.Title,
		Tech:          deck.Tech.Name,
		Node:          p.Node,
		SpecLo:        p.Lo,
		SpecHi:        p.Hi,
	}
	sub := func(name string) *subOut {
		o := graph.Outcome(name)
		if o == nil || !o.OK() {
			return nil
		}
		so, _ := o.Value.(*subOut)
		return so
	}

	var worstCorner string
	if so := sub("corners"); so != nil && so.res.Corners != nil {
		cr := so.res.Corners
		sec := &signoff.CornersSection{
			SigmaVT: p.SigmaVT, SigmaBeta: p.SigmaBeta,
			Worst: cr.Worst, WorstV: cr.WorstV, Pass: cr.Pass,
		}
		for _, cv := range cr.Corners {
			out := signoff.CornerResult{Name: cv.Name, V: cv.V, Margin: cv.Margin}
			if cv.Pass != nil {
				out.Pass = *cv.Pass
			}
			sec.Corners = append(sec.Corners, out)
		}
		rep.Corners = sec
		worstCorner = cr.Worst
	}

	if so := sub("mc"); so != nil && so.res.MC != nil {
		mo := so.res.MC
		ys := &signoff.YieldSection{
			Corner: worstCorner, Trials: mo.Requested, Completed: mo.Completed(),
		}
		if y := mo.Yield; y != nil {
			ys.PassCount = y.Pass
			ys.YieldPct = 100 * y.Yield
			ys.YieldLoPct = 100 * y.Lo95
			ys.YieldHiPct = 100 * y.Hi95
		}
		mean, sd := math.NaN(), math.NaN()
		if st := mo.Stats; st != nil {
			mean, sd = st.Mean(), st.StdDev()
		}
		ys.Mean = signoff.Ptr(mean)
		ys.StdDev = signoff.Ptr(sd)
		if !math.IsNaN(mean) && sd > 0 {
			sm := math.Inf(1)
			if p.Lo != nil {
				sm = math.Min(sm, (mean-*p.Lo)/sd)
			}
			if p.Hi != nil {
				sm = math.Min(sm, (*p.Hi-mean)/sd)
			}
			ys.SigmaMargin = signoff.Ptr(sm)
		}
		rep.Yield = ys
		rep.Pareto = failurePareto(mo, ys.PassCount)
	}

	if so := sub("age"); so != nil && so.res.Age != nil {
		ar := so.res.Age
		sec := &signoff.AgingSection{Years: ar.Years, TempK: ar.TempK}
		if n := len(ar.Checkpoints); n > 0 {
			sec.Converged = !ar.Checkpoints[n-1].Failed
		}
		modes := make(map[string]int)
		for _, d := range ar.Devices {
			if sec.WorstDevice == "" || math.Abs(d.DeltaVT) > math.Abs(*sec.WorstDeltaVT) {
				v := d.DeltaVT
				sec.WorstDevice, sec.WorstDeltaVT = d.Name, &v
			}
			modes[d.BDMode]++
		}
		names := make([]string, 0, len(modes))
		for m := range modes {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			sec.BDModes = append(sec.BDModes, signoff.BDModeCount{Mode: m, Count: modes[m]})
		}
		rep.Aging = sec
	}

	if so := sub("wearout"); so != nil && so.wear != nil {
		w := so.wear
		sec := &signoff.ReliabilitySection{TargetFIT: p.TargetFIT, EM: w.EM, TDDB: w.TDDB, Pass: true}
		if w.LambdaPerHour > 0 {
			sec.FIT = signoff.Ptr(1e9 * w.LambdaPerHour)
			sec.MTBFHours = signoff.Ptr(1 / w.LambdaPerHour)
			if sec.FIT != nil && *sec.FIT > p.TargetFIT {
				sec.Pass = false
			}
		}
		if w.EM != nil && len(w.EM.Violations) > 0 {
			sec.Pass = false
		}
		rep.Reliability = sec
	}

	// Violations and provenance, in deterministic order: spec failures
	// first, then incomplete sub-jobs in DAG declaration order.
	if rep.Corners != nil && !rep.Corners.Pass {
		for _, c := range rep.Corners.Corners {
			if !c.Pass {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("corner %s out of spec: V(%s) = %g", c.Name, p.Node, c.V))
			}
		}
	}
	if rel := rep.Reliability; rel != nil && !rel.Pass {
		if rel.FIT != nil && *rel.FIT > p.TargetFIT {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("composite failure rate %.3g FIT exceeds target %g", *rel.FIT, p.TargetFIT))
		}
		if rel.EM != nil && len(rel.EM.Violations) > 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%d wires miss the %g-year electromigration lifetime target", len(rel.EM.Violations), p.Years))
		}
	}
	complete := true
	for _, n := range nodes {
		o := graph.Outcome(n.Name)
		sj := signoff.SubJob{Name: n.Name}
		switch {
		case o == nil:
			complete = false
			sj.Skipped = true
			sj.Error = "not run"
		default:
			if so, ok := o.Value.(*subOut); ok && so != nil {
				sj.Analysis = string(so.analysis)
				sj.Hash = so.hash
				sj.Cached = so.cached
				sj.Resumed = so.resumed
			}
			sj.Skipped = o.Skipped
			if o.Err != nil {
				sj.Error = o.Err.Error()
			}
			if !o.OK() {
				complete = false
			}
		}
		if sj.Error != "" {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("sub-job %s did not complete: %s", sj.Name, sj.Error))
		}
		rep.Provenance = append(rep.Provenance, sj)
	}
	if !complete {
		res.Partial = true
		if res.Warning == "" {
			res.Warning = "signoff campaign incomplete: one or more sub-jobs failed"
		}
	}
	rep.Pass = complete &&
		(rep.Corners == nil || rep.Corners.Pass) &&
		(rep.Reliability == nil || rep.Reliability.Pass)
	return rep
}

// failurePareto ranks the Monte-Carlo trial outcomes by failure class:
// the variation.FailureKind taxonomy for errored trials, "nan_reject"
// for dies whose metric measured NaN, and "out_of_spec" for finite
// values outside the window. Sorted by count descending, then kind.
func failurePareto(mo *MCOutcome, passCount int) []signoff.ParetoEntry {
	completed := mo.Completed()
	if completed == 0 {
		return nil
	}
	counts := make(map[string]int, len(mo.FailuresByKind)+2)
	for k, n := range mo.FailuresByKind {
		counts[k] = n
	}
	if mo.NaNs > 0 {
		counts["nan_reject"] = mo.NaNs
	}
	if oos := completed - mo.Failures - mo.NaNs - passCount; oos > 0 {
		counts["out_of_spec"] = oos
	}
	out := make([]signoff.ParetoEntry, 0, len(counts))
	for k, n := range counts {
		out = append(out, signoff.ParetoEntry{Kind: k, Count: n, Percent: 100 * float64(n) / float64(completed)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// wearOutRollup is the inline wear-out node: Black-equation EM over wire
// geometries synthesized from the deck's resistors, and TDDB Weibull
// characteristic lives from the nominal operating-point gate stress,
// composed into one failure rate under the series-system assumption
// (each channel an exponential hazard at its characteristic life).
func wearOutRollup(deck *netlist.Deck, p *SignoffParams) (*wearOut, error) {
	sol, err := deck.Circuit.OperatingPoint()
	if err != nil {
		return nil, fmt.Errorf("wearout operating point: %w", err)
	}
	target := p.Years * yearSeconds
	w := &wearOut{}
	var lambdaPerHour float64

	// EM: every resistor stands in for one interconnect segment. The
	// geometry convention is fixed — width 4×Lmin, thickness 2×Lmin (a
	// typical intermediate-metal aspect) and a length that reproduces the
	// element's resistance in damascene copper (the inverse of
	// em.WireResistance) — so the same deck always maps to the same wires.
	const rhoEff = 2.2e-8 // Ω·m, matches em.WireResistance
	var wires []*em.Wire
	var bindings []em.Binding
	for _, name := range deck.Circuit.ResistorNames() {
		_, _, ohms, err := deck.Circuit.ResistorInfo(name)
		if err != nil {
			return nil, err
		}
		width, thick := 4*deck.Tech.Lmin, 2*deck.Tech.Lmin
		wire := &em.Wire{
			Name: name, Width: width, Thickness: thick,
			Length: ohms * width * thick / rhoEff,
		}
		wires = append(wires, wire)
		bindings = append(bindings, em.Binding{Resistor: name, Wire: wire})
	}
	if len(wires) > 0 {
		if err := em.AssignCurrents(deck.Circuit, sol, bindings); err != nil {
			return nil, err
		}
		black := em.DefaultBlack()
		rep := black.Check(wires, target, p.TempK)
		sec := &signoff.EMSection{Checked: rep.Checked, Immune: rep.Immune}
		for _, v := range rep.Violations {
			sec.Violations = append(sec.Violations, signoff.EMViolation{
				Wire:            v.Wire.Name,
				MTTFYears:       v.MTTF / yearSeconds,
				JDensityAm2:     v.JdensityAm2,
				SuggestedWidthM: v.SuggestedWidth,
			})
		}
		if !math.IsInf(rep.WorstMTTF, 1) {
			sec.WorstWire = rep.WorstWire
			sec.WorstMTTFYears = signoff.Ptr(rep.WorstMTTF / yearSeconds)
		}
		mttfs := make([]float64, len(wires))
		for i, wi := range wires {
			mttfs[i] = black.MTTF(wi, p.TempK)
		}
		if series := em.SeriesMTTF(mttfs); series > 0 && !math.IsInf(series, 1) {
			lam := 3600 / series // seconds → failures per hour
			sec.FIT = signoff.Ptr(1e9 * lam)
			lambdaPerHour += lam
		}
		w.EM = sec
	}

	// TDDB: each MOSFET's gate oxide is a Weibull-distributed breakdown
	// channel at its DC operating-point field; MTTF = η·Γ(1+1/β) turns
	// the characteristic life into a mean for the rate roll-up.
	stress := aging.ExtractStressOP(deck.Circuit, p.TempK)
	if len(stress) > 0 {
		tddb := aging.DefaultTDDB()
		beta := tddb.WeibullSlope(deck.Tech.ToxNM)
		gamma := math.Gamma(1 + 1/beta)
		sec := &signoff.TDDBSection{Beta: beta}
		names := make([]string, 0, len(stress))
		for n := range stress {
			names = append(names, n)
		}
		sort.Strings(names)
		worstEta := math.Inf(1)
		var lamTDDB float64
		for _, name := range names {
			m, ok := deck.MOSFETs[name]
			if !ok {
				continue
			}
			area := m.Dev.Params.W * m.Dev.Params.L
			eox := math.Abs(stress[name].Vgs) / deck.Tech.Tox()
			eta := tddb.Eta(eox, p.TempK, area, deck.Tech.ToxNM)
			sec.Devices++
			if eta < worstEta {
				worstEta = eta
				sec.WorstDevice = name
			}
			if mttf := eta * gamma; mttf > 0 && !math.IsInf(mttf, 1) {
				lamTDDB += 3600 / mttf
			}
		}
		if sec.Devices > 0 {
			if !math.IsInf(worstEta, 1) {
				sec.WorstEtaYears = signoff.Ptr(worstEta / yearSeconds)
			}
			if lamTDDB > 0 {
				sec.FIT = signoff.Ptr(1e9 * lamTDDB)
				lambdaPerHour += lamTDDB
			}
			w.TDDB = sec
		}
	}

	w.LambdaPerHour = lambdaPerHour
	return w, nil
}
