package jobspec

import (
	"context"
	"testing"
)

func TestMCBatchDefaultsAndValidation(t *testing.T) {
	s := &Spec{Analysis: KindMC, Netlist: inverterDeck, MC: &MCParams{Trials: 10, Node: "out"}}
	s.ApplyDefaults()
	if s.MC.Batch != 32 {
		t.Fatalf("ApplyDefaults batch = %d, want 32", s.MC.Batch)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.MC.Batch = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative batch accepted")
	}
}

// TestMCBatchExcludedFromHash pins batch as an execution-only knob: two
// submissions differing only in deck-reuse chunking must share a cache
// entry, and a pre-batch client's spec must keep its historical hash.
func TestMCBatchExcludedFromHash(t *testing.T) {
	mk := func(batch int) *Spec {
		s := &Spec{Analysis: KindMC, Netlist: inverterDeck, Seed: 3,
			MC: &MCParams{Trials: 10, Node: "out", Batch: batch}}
		s.ApplyDefaults()
		return s
	}
	h0, h1, h64 := mk(0).CanonicalHash(), mk(1).CanonicalHash(), mk(64).CanonicalHash()
	if h1 != h64 || h0 != h1 {
		t.Fatalf("batch leaked into the cache key: %s / %s / %s", h0, h1, h64)
	}
	changed := mk(0)
	changed.MC.Trials = 11
	if changed.CanonicalHash() == h0 {
		t.Fatal("trials change did not move the hash")
	}
}

// TestMCBatchBitIdenticalExecution runs the same MC spec with deck reuse
// disabled and enabled; pooling must not move a single value.
func TestMCBatchBitIdenticalExecution(t *testing.T) {
	run := func(batch int) *MCOutcome {
		s := &Spec{Analysis: KindMC, Netlist: inverterDeck, Seed: 9,
			MC: &MCParams{Trials: 40, Node: "out", Batch: batch}}
		s.ApplyDefaults()
		res, err := Execute(context.Background(), s)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		return res.MC
	}
	ref := run(1)
	got := run(16)
	if len(ref.Values) != 40 || len(got.Values) != len(ref.Values) {
		t.Fatalf("value counts %d vs %d, want 40", len(ref.Values), len(got.Values))
	}
	for i := range ref.Values {
		if ref.Values[i] != got.Values[i] {
			t.Fatalf("trial %d: batch=1 %.17g vs batch=16 %.17g", i, ref.Values[i], got.Values[i])
		}
	}
}
