package jobspec

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

const inverterDeck = `
* cmos inverter at 90nm
.tech 90nm
.temp 300
VDD vdd 0 DC 1.1
VIN in 0 DC 0.55
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.end
`

func TestDurationJSONRoundTrip(t *testing.T) {
	d := Duration(90 * time.Second)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Errorf("marshal = %s, want \"1m30s\"", b)
	}
	var back Duration
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip = %v, want %v", back, d)
	}
	// A naive client sends integer nanoseconds; accept those too.
	if err := json.Unmarshal([]byte("1500000000"), &back); err != nil {
		t.Fatal(err)
	}
	if back != Duration(1500*time.Millisecond) {
		t.Errorf("ns decode = %v", back)
	}
	if err := json.Unmarshal([]byte(`"ten minutes"`), &back); err == nil {
		t.Error("bad duration string accepted")
	}
	if err := json.Unmarshal([]byte("[]"), &back); err == nil {
		t.Error("non-scalar duration accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing netlist", Spec{Analysis: KindOP}, "needs a netlist"},
		{"future version", Spec{Version: SpecVersion + 1, Analysis: KindOP, Netlist: "x"}, "unsupported spec version"},
		{"negative timeout", Spec{Analysis: KindOP, Netlist: "x", Timeout: -1}, "negative timeout"},
		{"tran no params", Spec{Analysis: KindTran, Netlist: "x"}, "tran needs"},
		{"sweep one point", Spec{Analysis: KindSweep, Netlist: "x", Sweep: &SweepParams{Source: "V1", Points: 1}}, "points >= 2"},
		{"ac inverted band", Spec{Analysis: KindAC, Netlist: "x", AC: &ACParams{Source: "V1", FStart: 1e6, FStop: 1e3, Points: 5}}, "fstart < fstop"},
		{"age zero years", Spec{Analysis: KindAge, Netlist: "x", Age: &AgeParams{TempK: 350, Checkpoints: 4}}, "age needs"},
		{"mc no node", Spec{Analysis: KindMC, Netlist: "x", MC: &MCParams{Trials: 10}}, "mc needs a node"},
		{"mc inverted spec", Spec{Analysis: KindMC, Netlist: "x", MC: &MCParams{Trials: 10, Node: "out", Lo: ptr(0.9), Hi: ptr(0.1)}}, "lo 0.9 above hi 0.1"},
		{"corners no node", Spec{Analysis: KindCorners, Netlist: "x", Corners: &CornersParams{}}, "corners needs a node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateUnknownAnalysisIsTyped(t *testing.T) {
	spec := Spec{Analysis: "bogus", Netlist: "x"}
	err := spec.Validate()
	var unknown *ErrUnknownAnalysis
	if !errors.As(err, &unknown) {
		t.Fatalf("Validate() = %v, want *ErrUnknownAnalysis", err)
	}
	if unknown.Kind != "bogus" {
		t.Errorf("Kind = %q", unknown.Kind)
	}
	// The CLI prints this message as its usage hint: it must list the
	// valid kinds.
	for _, k := range Kinds() {
		if !strings.Contains(err.Error(), string(k)) {
			t.Errorf("error %q does not mention kind %q", err, k)
		}
	}
}

func TestApplyDefaultsFillsAndStaysIdempotent(t *testing.T) {
	s := &Spec{Analysis: KindMC, Netlist: "x"}
	s.ApplyDefaults()
	if s.Version != SpecVersion || s.Seed != 1 {
		t.Errorf("version/seed = %d/%d", s.Version, s.Seed)
	}
	if s.MC == nil || s.MC.Trials != 200 {
		t.Fatalf("mc defaults = %+v", s.MC)
	}
	// Idempotent, and explicit values survive.
	s.MC.Trials = 7
	s.MC.Node = "out"
	s.Seed = 42
	before := *s
	s.ApplyDefaults()
	if !reflect.DeepEqual(before, *s) {
		t.Errorf("second ApplyDefaults changed the spec: %+v -> %+v", before, *s)
	}
}

func TestApplyDefaultsEveryKindValidates(t *testing.T) {
	for _, k := range Kinds() {
		s := &Spec{Analysis: k, Netlist: "x"}
		s.ApplyDefaults()
		// Sweep/AC/MC/Corners need a source or node no default can
		// invent; centering and signoff additionally need a spec bound.
		switch k {
		case KindSweep:
			s.Sweep.Source = "V1"
		case KindAC:
			s.AC.Source = "V1"
		case KindMC:
			s.MC.Node = "out"
		case KindCorners:
			s.Corners.Node = "out"
		case KindCentering:
			s.Centering.Node = "out"
			s.Centering.Lo = ptr(0.4)
		case KindSignoff:
			s.Signoff.Node = "out"
			s.Signoff.Lo = ptr(0.4)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: defaulted spec invalid: %v", k, err)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := &Spec{
		Version:  SpecVersion,
		Analysis: KindMC,
		Netlist:  inverterDeck,
		Seed:     11,
		Timeout:  Duration(30 * time.Second),
		MC:       &MCParams{Trials: 50, Node: "out", Lo: ptr(0.4), Hi: ptr(0.8)},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// The wire format keeps the timeout human-readable.
	if !strings.Contains(string(b), `"timeout": "30s"`) && !strings.Contains(string(b), `"timeout":"30s"`) {
		t.Errorf("timeout not a duration string: %s", b)
	}
	out := new(Spec)
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestMCParamsSpecBounds(t *testing.T) {
	var nilP *MCParams
	if nilP.HasSpec() {
		t.Error("nil params claim a spec")
	}
	p := &MCParams{Lo: ptr(0.4)}
	if !p.HasSpec() {
		t.Error("one-sided spec not detected")
	}
	if got := p.SpecLo(); got != 0.4 {
		t.Errorf("SpecLo = %g", got)
	}
	if hi := p.SpecHi(); !(hi > 1e308) {
		t.Errorf("unset SpecHi = %g, want +Inf", hi)
	}
}

func TestExecuteOP(t *testing.T) {
	res, err := Execute(context.Background(), &Spec{
		Analysis: KindOP, Netlist: inverterDeck, Record: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindOP || res.OP == nil {
		t.Fatalf("result = %+v", res)
	}
	if len(res.OP.Nodes) != 1 || res.OP.Nodes[0].Node != "out" {
		t.Fatalf("nodes = %+v", res.OP.Nodes)
	}
	v := res.OP.Nodes[0].V
	if v <= 0 || v >= 1.1 {
		t.Errorf("V(out) = %g, want inside the rails", v)
	}
	if len(res.OP.Devices) != 2 {
		t.Errorf("devices = %+v", res.OP.Devices)
	}
}

func TestExecuteValidatesFirst(t *testing.T) {
	_, err := Execute(context.Background(), &Spec{Analysis: "bogus", Netlist: "x"})
	var unknown *ErrUnknownAnalysis
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want validation failure", err)
	}
	if _, err := Execute(context.Background(), nil); err == nil {
		t.Error("nil spec accepted")
	}
}

func TestExecuteMCProgressOrdering(t *testing.T) {
	const trials = 24
	var samples []Progress
	res, err := ExecuteOpts(context.Background(), &Spec{
		Analysis: KindMC, Netlist: inverterDeck, Seed: 1,
		MC: &MCParams{Trials: trials, Node: "out", Lo: ptr(0.0), Hi: ptr(1.1)},
	}, Options{
		ProgressEvery: 1,
		OnProgress:    func(p Progress) { samples = append(samples, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	mc := res.MC
	if mc.Requested != trials {
		t.Errorf("requested = %d", mc.Requested)
	}
	if got := len(mc.Values) + mc.Failures + mc.NaNs + mc.Cancelled; got != trials {
		t.Errorf("accounting: %d values + %d failed + %d NaN + %d cancelled != %d",
			len(mc.Values), mc.Failures, mc.NaNs, mc.Cancelled, trials)
	}
	if mc.Yield == nil {
		t.Error("spec bounds set but no yield estimate")
	}
	// Trials complete concurrently, yet the meter serializes emission:
	// every sample arrives, in order, Done = 1..trials.
	if len(samples) != trials {
		t.Fatalf("got %d progress samples, want %d", len(samples), trials)
	}
	for i, p := range samples {
		if p.Stage != "trial" || p.Done != i+1 || p.Total != trials {
			t.Fatalf("sample %d = %+v", i, p)
		}
	}
}

func TestExecuteMCCancelledIsExactlyAccounted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const trials = 100000
	// Cancel as soon as the first trial lands, so most of the run never
	// dispatches — the accounting must still balance to the trial.
	var once sync.Once
	res, err := ExecuteOpts(ctx, &Spec{
		Analysis: KindMC, Netlist: inverterDeck, Seed: 1,
		MC: &MCParams{Trials: trials, Node: "out"},
	}, Options{
		ProgressEvery: 1,
		OnProgress:    func(Progress) { once.Do(cancel) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("cancelled run not marked partial")
	}
	mc := res.MC
	if mc.Cancelled == 0 {
		t.Error("no trials recorded as cancelled")
	}
	if got := len(mc.Values) + mc.Failures + mc.NaNs + mc.Cancelled; got != trials {
		t.Errorf("accounting: %d + %d + %d + %d != %d",
			len(mc.Values), mc.Failures, mc.NaNs, mc.Cancelled, trials)
	}
}

func TestExecuteAgeCancelledReturnsPartial(t *testing.T) {
	// Cancel after the first checkpoint solves: the trajectory computed so
	// far must come back marked partial, not be discarded.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err := ExecuteOpts(ctx, &Spec{
		Analysis: KindAge, Netlist: inverterDeck, Seed: 1,
		Age: &AgeParams{Years: 10, TempK: 350, Checkpoints: 40},
	}, Options{
		ProgressEvery: 1,
		OnProgress:    func(Progress) { once.Do(cancel) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatalf("expected a partial result, got %d checkpoints complete", len(res.Age.Checkpoints))
	}
	if n := len(res.Age.Checkpoints); n == 0 || n >= 40 {
		t.Errorf("partial run has %d checkpoints, want 0 < n < 40", n)
	}
	if len(res.Age.Nodes) == 0 {
		t.Error("partial age result lost its node order")
	}
}

func ptr(v float64) *float64 { return &v }
