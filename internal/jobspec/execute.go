package jobspec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/mathx"
	"repro/internal/netlist"
	"repro/internal/variation"
)

const yearSeconds = 365.25 * 24 * 3600

// Progress is one execution progress sample. Stage is "trial" for
// Monte-Carlo dies and "checkpoint" for aging mission points; Done/Total
// count completed units.
type Progress struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// Options tunes an execution without changing its result.
type Options struct {
	// OnProgress, when non-nil, receives progress samples. Calls are
	// serialized and Done is strictly increasing within a stage, so a
	// consumer can append them to an ordered event log directly.
	OnProgress func(Progress)
	// ProgressEvery emits every k-th sample (the final one always fires).
	// 0 picks a default that bounds a run to ~200 samples.
	ProgressEvery int
}

// progressMeter serializes progress emission: Monte-Carlo trials finish
// concurrently, and without the lock two workers could emit Done values
// out of order between the increment and the callback.
type progressMeter struct {
	mu    sync.Mutex
	done  int
	total int
	every int
	stage string
	emit  func(Progress)
}

func newMeter(stage string, total int, opts Options) *progressMeter {
	if opts.OnProgress == nil {
		return nil
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = total / 200
		if every < 1 {
			every = 1
		}
	}
	return &progressMeter{total: total, every: every, stage: stage, emit: opts.OnProgress}
}

// tick records one completed unit and emits if due. Nil meters are no-ops
// so the disabled path costs one comparison.
func (p *progressMeter) tick() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if p.done%p.every == 0 || p.done == p.total {
		p.emit(Progress{Stage: p.stage, Done: p.done, Total: p.total})
	}
	p.mu.Unlock()
}

// Execute runs one analysis described by spec and returns its structured
// result. The spec is validated first, so a half-filled spec fails
// loudly rather than running with garbage; callers that accept sparse
// documents (the HTTP server) run ApplyDefaults at admission, while the
// CLI's flags already encode every default. A spec Timeout is layered
// onto ctx; cancellation or expiry mid-run yields a partial Result
// (Partial set, Warning explaining why) for the analyses that support it
// (mc, age) and an error for the rest. Execute is the single dispatch
// path shared by the relsim CLI and the internal/serve job server —
// both execute the identical struct.
func Execute(ctx context.Context, spec *Spec) (*Result, error) {
	return ExecuteOpts(ctx, spec, Options{})
}

// ExecuteOpts is Execute with progress streaming.
func ExecuteOpts(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	if spec == nil {
		return nil, fmt.Errorf("jobspec: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.Timeout))
		defer cancel()
	}
	text := spec.Netlist
	if text == "" {
		b, err := os.ReadFile(spec.NetlistFile)
		if err != nil {
			return nil, fmt.Errorf("jobspec: %w", err)
		}
		text = string(b)
	}
	deck, err := netlist.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("jobspec: %w before start", err)
	}

	start := time.Now()
	res := &Result{Kind: spec.Analysis, Seed: spec.Seed}
	switch spec.Analysis {
	case KindOP:
		err = executeOP(deck, spec, res)
	case KindTran:
		err = executeTran(deck, spec, res)
	case KindSweep:
		err = executeSweep(deck, spec, res)
	case KindAC:
		err = executeAC(deck, spec, res)
	case KindAge:
		err = executeAge(ctx, deck, spec, res, opts)
	case KindMC:
		err = executeMC(ctx, text, deck, spec, res, opts)
	case KindCorners:
		err = executeCorners(deck, spec, res)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = Duration(time.Since(start))
	return res, nil
}

// recordNodes resolves the report node list (default: every node).
func recordNodes(deck *netlist.Deck, spec *Spec) []string {
	if len(spec.Record) > 0 {
		return spec.Record
	}
	return deck.Circuit.NodeNames()
}

func executeOP(deck *netlist.Deck, spec *Spec, res *Result) error {
	sol, err := deck.Circuit.OperatingPoint()
	if err != nil {
		return err
	}
	out := &OPResult{}
	for _, n := range recordNodes(deck, spec) {
		out.Nodes = append(out.Nodes, NodeVoltage{Node: n, V: sol.Voltage(n)})
	}
	if len(deck.MOSFETs) > 0 {
		for _, m := range deck.Circuit.MOSFETs() {
			op := m.OP()
			out.Devices = append(out.Devices, DeviceOP{
				Name: m.Name(), ID: op.ID, Gm: op.Gm, Region: op.Region,
			})
		}
	}
	res.OP = out
	return nil
}

// seriesFromWaveforms flattens a transient result into a Series, using
// the waveform's own node order when the spec recorded nothing.
func seriesFromWaveforms(wf *circuit.Waveforms, nodes []string) *Series {
	if len(nodes) == 0 {
		nodes = wf.Nodes()
	}
	s := &Series{Headers: append([]string{"t [s]"}, nodes...)}
	s.Rows = make([][]float64, len(wf.Times))
	for i, tm := range wf.Times {
		row := []float64{tm}
		for _, n := range nodes {
			row = append(row, wf.Node(n)[i])
		}
		s.Rows[i] = row
	}
	return s
}

func executeTran(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.Tran
	var (
		wf  *circuit.Waveforms
		err error
	)
	if p.Adaptive {
		wf, err = deck.Circuit.TransientAdaptive(circuit.AdaptiveSpec{
			Stop: p.Stop, MinStep: p.Step, MaxStep: p.Stop / 20, LTETol: p.LTETol,
			Integrator: circuit.Trapezoidal, Record: spec.Record,
		})
	} else {
		wf, err = deck.Circuit.Transient(circuit.TranSpec{
			Stop: p.Stop, Step: p.Step, Integrator: circuit.Trapezoidal, Record: spec.Record,
		})
	}
	if err != nil {
		return err
	}
	res.Series = seriesFromWaveforms(wf, spec.Record)
	return nil
}

func executeSweep(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.Sweep
	values := mathx.Linspace(p.From, p.To, p.Points)
	sols, err := deck.Circuit.DCSweep(p.Source, values)
	if err != nil {
		return err
	}
	nodes := recordNodes(deck, spec)
	s := &Series{Headers: append([]string{p.Source}, nodes...)}
	s.Rows = make([][]float64, len(values))
	for i := range values {
		row := []float64{values[i]}
		for _, n := range nodes {
			row = append(row, sols[i].Voltage(n))
		}
		s.Rows[i] = row
	}
	res.Series = s
	return nil
}

func executeAC(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.AC
	src, err := deck.Circuit.VSourceByName(p.Source)
	if err != nil {
		return err
	}
	src.ACMag = 1
	pts, err := deck.Circuit.AC(mathx.Logspace(p.FStart, p.FStop, p.Points))
	if err != nil {
		return err
	}
	nodes := recordNodes(deck, spec)
	s := &Series{Headers: []string{"f [Hz]"}}
	for _, n := range nodes {
		s.Headers = append(s.Headers, n+" [dB]", n+" [deg]")
	}
	s.Rows = make([][]float64, len(pts))
	for i := range pts {
		row := []float64{pts[i].Freq}
		for _, n := range nodes {
			row = append(row, pts[i].MagDB(n), pts[i].PhaseDeg(n))
		}
		s.Rows[i] = row
	}
	res.Series = s
	return nil
}

func executeAge(ctx context.Context, deck *netlist.Deck, spec *Spec, res *Result, opts Options) error {
	p := spec.Age
	nodes := recordNodes(deck, spec)
	ager := aging.NewCircuitAger(deck.Circuit, aging.DefaultModels(), p.TempK, spec.Seed)
	meter := newMeter("checkpoint", p.Checkpoints, opts)
	ager.OnCheckpoint = func(int, aging.Checkpoint) { meter.tick() }
	traj, err := ager.AgeToCtx(ctx, aging.LogCheckpoints(3600, p.Years*yearSeconds, p.Checkpoints))
	if err != nil {
		if len(traj) == 0 || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			return err
		}
		res.Partial = true
		res.Warning = err.Error()
	}
	out := &AgeResult{Years: p.Years, TempK: p.TempK, Nodes: nodes}
	for _, cp := range traj {
		ck := AgeCheckpoint{Time: cp.Time, Failed: cp.Failed}
		if !cp.Failed {
			for _, n := range nodes {
				ck.Nodes = append(ck.Nodes, NodeVoltage{Node: n, V: cp.Solution.Voltage(n)})
			}
		}
		out.Checkpoints = append(out.Checkpoints, ck)
	}
	for _, name := range ager.SortedAgerNames() {
		m := deck.MOSFETs[name]
		out.Devices = append(out.Devices, DeviceDamage{
			Name:           name,
			DeltaVT:        m.Dev.Damage.DeltaVT,
			MobilityFactor: m.Dev.Damage.MobilityFactor,
			BDMode:         ager.Ager(name).BDMode().String(),
		})
	}
	res.Age = out
	return nil
}

// deckPool recycles parsed netlist decks across Monte-Carlo trials. A
// trial that finishes cleanly returns its deck for reuse by the next
// trial (up to batch uses, bounding state drift); a trial that errors
// drops its deck, since a non-converged circuit's state is suspect.
// Reused decks are reset to fresh-parse solver state before handing out,
// so pooling never changes a result.
type deckPool struct {
	text  string
	batch int

	mu   sync.Mutex
	free []*pooledDeck
}

type pooledDeck struct {
	deck *netlist.Deck
	uses int
}

func (p *deckPool) get() (*pooledDeck, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		d.deck.Circuit.ResetSolverState()
		return d, nil
	}
	p.mu.Unlock()
	deck, err := netlist.Parse(p.text)
	if err != nil {
		return nil, err
	}
	return &pooledDeck{deck: deck}, nil
}

func (p *deckPool) put(d *pooledDeck) {
	d.uses++
	if d.uses >= p.batch {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, d)
	p.mu.Unlock()
}

func executeMC(ctx context.Context, text string, deck *netlist.Deck, spec *Spec, res *Result, opts Options) error {
	p := spec.MC
	// Trials run in parallel, so each die solves a private circuit instead
	// of mutating the shared deck; the nominal solution warm-starts every
	// trial's first solve. Decks are pooled: one parse serves up to batch
	// trials, which amortises netlist parsing and the sparse backend's
	// pattern discovery without perturbing any value (mismatch is fully
	// overwritten per trial and solver state reset on reuse).
	batch := p.Batch
	if batch < 1 {
		batch = 32
	}
	pool := &deckPool{text: text, batch: batch}
	var guess []float64
	if sol, err := deck.Circuit.OperatingPoint(); err == nil {
		guess = sol.X
	}
	meter := newMeter("trial", p.Trials, opts)
	mc, err := variation.MonteCarloCtx(ctx, p.Trials, spec.Seed, func(rng *mathx.RNG, _ int) (float64, error) {
		defer meter.tick()
		die, err := pool.get()
		if err != nil {
			return 0, err
		}
		if guess != nil {
			_ = die.deck.Circuit.SetInitialGuess(guess)
		}
		variation.ApplyRandomMismatch(die.deck.Circuit, die.deck.Tech, variation.NominalCorner(), rng)
		sol, err := die.deck.Circuit.OperatingPoint()
		if err != nil {
			return 0, err
		}
		pool.put(die)
		return sol.Voltage(p.Node), nil
	})
	if err != nil {
		if !errors.Is(err, variation.ErrCancelled) {
			return err
		}
		res.Partial = true
		res.Warning = err.Error()
	}
	out := &MCOutcome{
		Node:      p.Node,
		Requested: mc.N,
		Values:    mc.Values,
		Failures:  mc.Failures,
		NaNs:      mc.NaNs,
		Cancelled: mc.Cancelled,
		Elapsed:   Duration(mc.Elapsed),
	}
	if mc.Failures > 0 {
		out.FailuresByKind = make(map[string]int)
		for kind, count := range mc.ErrorsByKind() {
			out.FailuresByKind[kind.String()] = count
		}
		out.FirstFailure = mc.Errors[0].Error()
	}
	if p.HasSpec() && len(mc.Values) > 0 {
		y := variation.EstimateYield(mc.Values, variation.Spec{
			Name: p.Node, Lo: p.SpecLo(), Hi: p.SpecHi(),
		})
		out.Yield = &y
	}
	res.MC = out
	return nil
}

func executeCorners(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.Corners
	// 3σ global corner levels; the defaults are a representative
	// 30 mV / 8 % spread.
	corners := variation.StandardCorners(p.SigmaVT, p.SigmaBeta)
	vals, err := variation.CornerSweep(deck.Circuit, corners, func(c *circuit.Circuit) (float64, error) {
		sol, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(p.Node), nil
	})
	if err != nil {
		return err
	}
	out := &CornersResult{Node: p.Node}
	for _, co := range corners {
		out.Corners = append(out.Corners, CornerValue{Name: co.Name, V: vals[co.Name]})
	}
	res.Corners = out
	return nil
}
