package jobspec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/mathx"
	"repro/internal/netlist"
	"repro/internal/variation"
)

const yearSeconds = 365.25 * 24 * 3600

// Progress is one execution progress sample. Stage is "trial" for
// Monte-Carlo dies and "checkpoint" for aging mission points; Done/Total
// count completed units.
type Progress struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// Options tunes an execution without changing its result.
type Options struct {
	// OnProgress, when non-nil, receives progress samples. Calls are
	// serialized and Done is strictly increasing within a stage, so a
	// consumer can append them to an ordered event log directly.
	OnProgress func(Progress)
	// ProgressEvery emits every k-th sample (the final one always fires).
	// 0 picks a default that bounds a run to ~200 samples.
	ProgressEvery int
	// OnCheckpoint, when non-nil, receives one checkpoint per completed
	// Monte-Carlo campaign chunk — the durable unit of resume. Calls are
	// serialized. A consumer that journals every checkpoint can hand the
	// payloads back through Resume to continue an interrupted campaign
	// re-running at most the chunk that was in flight.
	OnCheckpoint func(Checkpoint)
	// Resume supplies checkpoint payloads journaled from a previous
	// execution of the same spec; the covered chunks are folded without
	// re-running their trials. A payload that does not fit the campaign
	// grid fails the execution loudly rather than merging wrong numbers.
	Resume []json.RawMessage
	// RunShard, when non-nil, executes one trial-range sub-spec of a
	// sharded campaign (shard is the 0-based shard index) — the hook the
	// job server uses to dispatch shards to peer servers. Nil falls back
	// to executing every shard in this process.
	RunShard func(ctx context.Context, shard int, sub *Spec) (*Result, error)
	// RunSub, when non-nil, executes one sub-job of a composite (signoff)
	// campaign and reports whether the result was answered from a
	// spec-keyed result cache rather than executed — the hook the job
	// server uses to share sub-results with identical standalone
	// submissions. Nil falls back to executing the sub-spec in this
	// process (never cached).
	RunSub func(ctx context.Context, name string, sub *Spec) (*Result, bool, error)
}

// Checkpoint is one durable unit of Monte-Carlo campaign progress: the
// JSON summary (variation.ChunkStat) of one completed grid chunk. Seq is
// the global chunk index; replaying Data through Options.Resume skips
// the chunk on the next run.
type Checkpoint struct {
	Stage string
	Seq   int
	Data  json.RawMessage
}

// progressMeter serializes progress emission: Monte-Carlo trials finish
// concurrently, and without the lock two workers could emit Done values
// out of order between the increment and the callback.
type progressMeter struct {
	mu    sync.Mutex
	done  int
	total int
	every int
	stage string
	emit  func(Progress)
}

func newMeter(stage string, total int, opts Options) *progressMeter {
	if opts.OnProgress == nil {
		return nil
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = total / 200
		if every < 1 {
			every = 1
		}
	}
	return &progressMeter{total: total, every: every, stage: stage, emit: opts.OnProgress}
}

// tick records one completed unit and emits if due. Nil meters are no-ops
// so the disabled path costs one comparison.
func (p *progressMeter) tick() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if p.done%p.every == 0 || p.done == p.total {
		p.emit(Progress{Stage: p.stage, Done: p.done, Total: p.total})
	}
	p.mu.Unlock()
}

// Execute runs one analysis described by spec and returns its structured
// result. The spec is validated first, so a half-filled spec fails
// loudly rather than running with garbage; callers that accept sparse
// documents (the HTTP server) run ApplyDefaults at admission, while the
// CLI's flags already encode every default. A spec Timeout is layered
// onto ctx; cancellation or expiry mid-run yields a partial Result
// (Partial set, Warning explaining why) for the analyses that support it
// (mc, age) and an error for the rest. Execute is the single dispatch
// path shared by the relsim CLI and the internal/serve job server —
// both execute the identical struct.
func Execute(ctx context.Context, spec *Spec) (*Result, error) {
	return ExecuteOpts(ctx, spec, Options{})
}

// ExecuteOpts is Execute with progress streaming.
func ExecuteOpts(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	if spec == nil {
		return nil, fmt.Errorf("jobspec: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.Timeout))
		defer cancel()
	}
	text := spec.Netlist
	if text == "" {
		b, err := os.ReadFile(spec.NetlistFile)
		if err != nil {
			return nil, fmt.Errorf("jobspec: %w", err)
		}
		text = string(b)
	}
	deck, err := netlist.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("jobspec: %w before start", err)
	}

	start := time.Now()
	res := &Result{Kind: spec.Analysis, Seed: spec.Seed}
	switch spec.Analysis {
	case KindOP:
		err = executeOP(deck, spec, res)
	case KindTran:
		err = executeTran(deck, spec, res)
	case KindSweep:
		err = executeSweep(deck, spec, res)
	case KindAC:
		err = executeAC(deck, spec, res)
	case KindAge:
		err = executeAge(ctx, deck, spec, res, opts)
	case KindMC:
		err = executeMC(ctx, text, deck, spec, res, opts)
	case KindCorners:
		err = executeCorners(deck, spec, res)
	case KindCentering:
		err = executeCentering(ctx, text, deck, spec, res, opts)
	case KindSignoff:
		err = executeSignoff(ctx, text, deck, spec, res, opts)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = Duration(time.Since(start))
	return res, nil
}

// recordNodes resolves the report node list (default: every node).
func recordNodes(deck *netlist.Deck, spec *Spec) []string {
	if len(spec.Record) > 0 {
		return spec.Record
	}
	return deck.Circuit.NodeNames()
}

func executeOP(deck *netlist.Deck, spec *Spec, res *Result) error {
	sol, err := deck.Circuit.OperatingPoint()
	if err != nil {
		return err
	}
	out := &OPResult{}
	for _, n := range recordNodes(deck, spec) {
		out.Nodes = append(out.Nodes, NodeVoltage{Node: n, V: sol.Voltage(n)})
	}
	if len(deck.MOSFETs) > 0 {
		for _, m := range deck.Circuit.MOSFETs() {
			op := m.OP()
			out.Devices = append(out.Devices, DeviceOP{
				Name: m.Name(), ID: op.ID, Gm: op.Gm, Region: op.Region,
			})
		}
	}
	res.OP = out
	return nil
}

// seriesFromWaveforms flattens a transient result into a Series, using
// the waveform's own node order when the spec recorded nothing.
func seriesFromWaveforms(wf *circuit.Waveforms, nodes []string) *Series {
	if len(nodes) == 0 {
		nodes = wf.Nodes()
	}
	s := &Series{Headers: append([]string{"t [s]"}, nodes...)}
	s.Rows = make([][]float64, len(wf.Times))
	for i, tm := range wf.Times {
		row := []float64{tm}
		for _, n := range nodes {
			row = append(row, wf.Node(n)[i])
		}
		s.Rows[i] = row
	}
	return s
}

func executeTran(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.Tran
	var (
		wf  *circuit.Waveforms
		err error
	)
	if p.Adaptive {
		wf, err = deck.Circuit.TransientAdaptive(circuit.AdaptiveSpec{
			Stop: p.Stop, MinStep: p.Step, MaxStep: p.Stop / 20, LTETol: p.LTETol,
			Integrator: circuit.Trapezoidal, Record: spec.Record,
		})
	} else {
		wf, err = deck.Circuit.Transient(circuit.TranSpec{
			Stop: p.Stop, Step: p.Step, Integrator: circuit.Trapezoidal, Record: spec.Record,
		})
	}
	if err != nil {
		return err
	}
	res.Series = seriesFromWaveforms(wf, spec.Record)
	return nil
}

func executeSweep(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.Sweep
	values := mathx.Linspace(p.From, p.To, p.Points)
	sols, err := deck.Circuit.DCSweep(p.Source, values)
	if err != nil {
		return err
	}
	nodes := recordNodes(deck, spec)
	s := &Series{Headers: append([]string{p.Source}, nodes...)}
	s.Rows = make([][]float64, len(values))
	for i := range values {
		row := []float64{values[i]}
		for _, n := range nodes {
			row = append(row, sols[i].Voltage(n))
		}
		s.Rows[i] = row
	}
	res.Series = s
	return nil
}

func executeAC(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.AC
	src, err := deck.Circuit.VSourceByName(p.Source)
	if err != nil {
		return err
	}
	src.ACMag = 1
	pts, err := deck.Circuit.AC(mathx.Logspace(p.FStart, p.FStop, p.Points))
	if err != nil {
		return err
	}
	nodes := recordNodes(deck, spec)
	s := &Series{Headers: []string{"f [Hz]"}}
	for _, n := range nodes {
		s.Headers = append(s.Headers, n+" [dB]", n+" [deg]")
	}
	s.Rows = make([][]float64, len(pts))
	for i := range pts {
		row := []float64{pts[i].Freq}
		for _, n := range nodes {
			row = append(row, pts[i].MagDB(n), pts[i].PhaseDeg(n))
		}
		s.Rows[i] = row
	}
	res.Series = s
	return nil
}

func executeAge(ctx context.Context, deck *netlist.Deck, spec *Spec, res *Result, opts Options) error {
	p := spec.Age
	nodes := recordNodes(deck, spec)
	ager := aging.NewCircuitAger(deck.Circuit, aging.DefaultModels(), p.TempK, spec.Seed)
	meter := newMeter("checkpoint", p.Checkpoints, opts)
	ager.OnCheckpoint = func(int, aging.Checkpoint) { meter.tick() }
	traj, err := ager.AgeToCtx(ctx, aging.LogCheckpoints(3600, p.Years*yearSeconds, p.Checkpoints))
	if err != nil {
		if len(traj) == 0 || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			return err
		}
		res.Partial = true
		res.Warning = err.Error()
	}
	out := &AgeResult{Years: p.Years, TempK: p.TempK, Nodes: nodes}
	for _, cp := range traj {
		ck := AgeCheckpoint{Time: cp.Time, Failed: cp.Failed}
		if !cp.Failed {
			for _, n := range nodes {
				ck.Nodes = append(ck.Nodes, NodeVoltage{Node: n, V: cp.Solution.Voltage(n)})
			}
		}
		out.Checkpoints = append(out.Checkpoints, ck)
	}
	for _, name := range ager.SortedAgerNames() {
		m := deck.MOSFETs[name]
		out.Devices = append(out.Devices, DeviceDamage{
			Name:           name,
			DeltaVT:        m.Dev.Damage.DeltaVT,
			MobilityFactor: m.Dev.Damage.MobilityFactor,
			BDMode:         ager.Ager(name).BDMode().String(),
		})
	}
	res.Age = out
	return nil
}

// deckPool recycles parsed netlist decks across Monte-Carlo trials. A
// trial that finishes cleanly returns its deck for reuse by the next
// trial (up to batch uses, bounding state drift); a trial that errors
// drops its deck, since a non-converged circuit's state is suspect.
// Reused decks are reset to fresh-parse solver state before handing out,
// so pooling never changes a result.
type deckPool struct {
	text  string
	batch int

	mu   sync.Mutex
	free []*pooledDeck
}

type pooledDeck struct {
	deck *netlist.Deck
	uses int
}

func (p *deckPool) get() (*pooledDeck, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		d.deck.Circuit.ResetSolverState()
		return d, nil
	}
	p.mu.Unlock()
	deck, err := netlist.Parse(p.text)
	if err != nil {
		return nil, err
	}
	return &pooledDeck{deck: deck}, nil
}

func (p *deckPool) put(d *pooledDeck) {
	d.uses++
	if d.uses >= p.batch {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, d)
	p.mu.Unlock()
}

// decodeResume parses journaled chunk checkpoints back into ChunkStats
// and validates them against the campaign grid. A payload that does not
// decode or does not fit the grid is an error: resuming with a foreign
// checkpoint must fail loudly, never merge wrong statistics. Duplicate
// chunk records (a journal can carry rewrites) keep the first.
func decodeResume(raw []json.RawMessage, trials int) ([]variation.ChunkStat, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	nc := variation.NumChunks(trials)
	out := make([]variation.ChunkStat, 0, len(raw))
	seen := make(map[int]bool, len(raw))
	for _, b := range raw {
		var st variation.ChunkStat
		if err := json.Unmarshal(b, &st); err != nil {
			return nil, fmt.Errorf("jobspec: decoding resume checkpoint: %w", err)
		}
		if st.Chunk < 0 || st.Chunk >= nc {
			return nil, fmt.Errorf("jobspec: resume chunk %d outside the %d-chunk campaign grid", st.Chunk, nc)
		}
		if ef, et := variation.ChunkRange(trials, st.Chunk); st.From != ef || st.To != et {
			return nil, fmt.Errorf("jobspec: resume chunk %d range [%d,%d) does not match grid [%d,%d) — checkpoint from a different campaign?",
				st.Chunk, st.From, st.To, ef, et)
		}
		if seen[st.Chunk] {
			continue
		}
		seen[st.Chunk] = true
		out = append(out, st)
	}
	return out, nil
}

// emitCheckpoint journals one completed chunk through the caller's hook.
func emitCheckpoint(opts Options, st variation.ChunkStat) {
	if opts.OnCheckpoint == nil {
		return
	}
	b, err := json.Marshal(st)
	if err != nil {
		return // a ChunkStat always marshals; never fail the campaign on it
	}
	opts.OnCheckpoint(Checkpoint{Stage: "chunk", Seq: st.Chunk, Data: b})
}

// mcOutcome assembles the MCOutcome from a campaign result. The failure
// taxonomy and yield come from the mergeable Stats, so they are
// available identically whether or not per-trial values were kept.
func mcOutcome(p *MCParams, mc *variation.MCResult, chunks []variation.ChunkStat) *MCOutcome {
	out := &MCOutcome{
		Node:      p.Node,
		Requested: mc.N,
		Values:    mc.Values,
		Failures:  mc.Failures,
		NaNs:      mc.NaNs,
		Cancelled: mc.Cancelled,
		Elapsed:   Duration(mc.Elapsed),
		Stats:     mc.Stats,
		Chunks:    chunks,
		Resumed:   mc.Resumed,
	}
	if st := mc.Stats; st != nil {
		if st.Failures > 0 {
			out.FailuresByKind = st.ByKind
			out.FirstFailure = st.First
		}
		// NaN dies are measured rejects, so a campaign where every die
		// measured NaN still has a (zero) yield.
		if p.HasSpec() && int(st.Moments.Count)+st.NaNs > 0 {
			y := st.Yield()
			out.Yield = &y
		}
	}
	return out
}

func executeMC(ctx context.Context, text string, deck *netlist.Deck, spec *Spec, res *Result, opts Options) error {
	p := spec.MC
	resume, err := decodeResume(opts.Resume, p.Trials)
	if err != nil {
		return err
	}
	if p.Shards > 1 && p.Range == nil {
		return executeMCSharded(ctx, spec, res, opts, resume)
	}
	// Trials run in parallel, so each die solves a private circuit instead
	// of mutating the shared deck; the nominal solution warm-starts every
	// trial's first solve. Decks are pooled: one parse serves up to batch
	// trials, which amortises netlist parsing and the sparse backend's
	// pattern discovery without perturbing any value (mismatch is fully
	// overwritten per trial and solver state reset on reuse).
	batch := p.Batch
	if batch < 1 {
		batch = 32
	}
	pool := &deckPool{text: text, batch: batch}
	var guess []float64
	if sol, err := deck.Circuit.OperatingPoint(); err == nil {
		guess = sol.X
	}
	from, to := 0, p.Trials
	if p.Range != nil {
		from, to = p.Range.From, p.Range.To
	}
	// The meter counts trials this execution actually runs: resumed
	// chunks are folded from checkpoints, not re-run.
	toRun := to - from
	for _, st := range resume {
		if st.From >= from && st.To <= to {
			toRun -= st.To - st.From
		}
	}
	meter := newMeter("trial", toRun, opts)
	var vspec *variation.Spec
	if p.HasSpec() {
		vspec = &variation.Spec{Name: p.Node, Lo: p.SpecLo(), Hi: p.SpecHi()}
	}
	// A corner-pinned campaign holds the systematic (die-to-die) component
	// at a named corner while the local Pelgrom part still varies per die.
	var pinned *variation.Corner
	if p.Corner != nil {
		co, ok := variation.CornerByName(p.Corner.Name, p.Corner.SigmaVT, p.Corner.SigmaBeta)
		if !ok {
			return fmt.Errorf("jobspec: unknown mc corner %q", p.Corner.Name)
		}
		pinned = &co
	}
	var chunks []variation.ChunkStat
	camp := &variation.Campaign{
		Trials: p.Trials,
		Seed:   spec.Seed,
		Spec:   vspec,
		From:   from,
		To:     to,
		Resume: resume,
		// Per-trial values feed the CLI histogram; a trial-range sub-job
		// or a resumed campaign reports from mergeable Stats alone.
		KeepValues: p.Range == nil && len(resume) == 0,
		Trial: func(rng *mathx.RNG, _ int) (float64, error) {
			defer meter.tick()
			die, err := pool.get()
			if err != nil {
				return 0, err
			}
			if guess != nil {
				_ = die.deck.Circuit.SetInitialGuess(guess)
			}
			if pinned != nil {
				variation.ApplyRandomMismatchAtCorner(die.deck.Circuit, die.deck.Tech, *pinned, rng)
			} else {
				variation.ApplyRandomMismatch(die.deck.Circuit, die.deck.Tech, variation.NominalCorner(), rng)
			}
			sol, err := die.deck.Circuit.OperatingPoint()
			if err != nil {
				return 0, err
			}
			pool.put(die)
			return sol.Voltage(p.Node), nil
		},
		OnChunk: func(st variation.ChunkStat) {
			// Run emits complete chunks sequentially from one goroutine.
			if p.Range != nil {
				chunks = append(chunks, st)
			}
			emitCheckpoint(opts, st)
		},
	}
	mc, err := camp.Run(ctx)
	if err != nil {
		if !errors.Is(err, variation.ErrCancelled) {
			return err
		}
		res.Partial = true
		res.Warning = err.Error()
	}
	res.MC = mcOutcome(p, mc, chunks)
	return nil
}

// executeMCSharded scatter-gathers a Monte-Carlo campaign across
// trial-range sub-jobs. Each shard covers a contiguous run of whole grid
// chunks; shards whose chunks are all resumed are skipped outright.
// Gathered per-chunk stats are folded in ascending global chunk order,
// which is what makes the merged mean/std/yield bit-identical to a
// single-shard run for any shard count.
func executeMCSharded(ctx context.Context, spec *Spec, res *Result, opts Options, resume []variation.ChunkStat) error {
	p := spec.MC
	nc := variation.NumChunks(p.Trials)
	k := p.Shards
	if k > nc {
		k = nc
	}
	runShard := opts.RunShard
	if runShard == nil {
		runShard = func(ctx context.Context, _ int, sub *Spec) (*Result, error) {
			return ExecuteOpts(ctx, sub, Options{})
		}
	}
	// byChunk gathers chunk stats under mu once shards start; resumed is
	// its immutable pre-launch snapshot, safe to read while launching.
	byChunk := make(map[int]variation.ChunkStat, nc)
	resumed := make(map[int]bool, len(resume))
	for _, st := range resume {
		byChunk[st.Chunk] = st
		resumed[st.Chunk] = true
	}

	var (
		mu         sync.Mutex
		shardsDone int
		firstErr   error
	)
	emitShard := func() { // callers hold mu
		shardsDone++
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{Stage: "shard", Done: shardsDone, Total: k})
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		firstChunk, lastChunk := s*nc/k, (s+1)*nc/k
		from, _ := variation.ChunkRange(p.Trials, firstChunk)
		_, to := variation.ChunkRange(p.Trials, lastChunk-1)
		allResumed := true
		for c := firstChunk; c < lastChunk; c++ {
			if !resumed[c] {
				allResumed = false
				break
			}
		}
		if allResumed {
			mu.Lock()
			emitShard()
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(s int, sub *Spec) {
			defer wg.Done()
			r, err := runShard(ctx, s, sub)
			mu.Lock()
			defer mu.Unlock()
			if err == nil && (r == nil || r.MC == nil) {
				err = fmt.Errorf("shard returned no mc outcome")
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("jobspec: shard %d [%d,%d): %w", s, sub.MC.Range.From, sub.MC.Range.To, err)
				}
				return
			}
			if r.Partial && !res.Partial {
				res.Partial = true
				res.Warning = r.Warning
			}
			for _, st := range r.MC.Chunks {
				if _, ok := byChunk[st.Chunk]; ok {
					continue // a resumed chunk wins; identical by construction
				}
				byChunk[st.Chunk] = st
				emitCheckpoint(opts, st)
			}
			emitShard()
		}(s, shardSpec(spec, from, to))
	}
	wg.Wait()
	if firstErr != nil && ctx.Err() == nil {
		return firstErr
	}

	merged := &variation.MCStats{}
	for c := 0; c < nc; c++ {
		if st, ok := byChunk[c]; ok {
			merged.Merge(&st.Stats)
		}
	}
	mc := &variation.MCResult{
		N:         p.Trials,
		Stats:     merged,
		NaNs:      merged.NaNs,
		Failures:  merged.Failures,
		Cancelled: p.Trials - merged.Completed(),
		Elapsed:   time.Since(start),
		Resumed:   len(resume),
	}
	if mc.Cancelled > 0 {
		res.Partial = true
		if res.Warning == "" {
			res.Warning = fmt.Sprintf("%v after %d/%d trials", variation.ErrCancelled, merged.Completed(), p.Trials)
		}
	}
	out := mcOutcome(p, mc, nil)
	out.Shards = k
	res.MC = out
	return nil
}

// shardSpec derives the trial-range sub-spec one shard executes: the
// same campaign (netlist, seed, total trials, spec bounds — hence the
// same chunk grid and RNG substreams), restricted to [from, to) and
// never itself sharded.
func shardSpec(spec *Spec, from, to int) *Spec {
	c := *spec
	mc := *spec.MC
	mc.Range = &TrialRange{From: from, To: to}
	mc.Shards = 0
	c.MC = &mc
	return &c
}

func executeCorners(deck *netlist.Deck, spec *Spec, res *Result) error {
	p := spec.Corners
	// 3σ global corner levels; the defaults are a representative
	// 30 mV / 8 % spread.
	corners := variation.StandardCorners(p.SigmaVT, p.SigmaBeta)
	vals, err := variation.CornerSweep(deck.Circuit, corners, func(c *circuit.Circuit) (float64, error) {
		sol, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(p.Node), nil
	})
	if err != nil {
		return err
	}
	out := &CornersResult{Node: p.Node, Lo: p.Lo, Hi: p.Hi, Pass: true}
	hasSpec := p.HasSpec()
	lo, hi := p.SpecLo(), p.SpecHi()
	ttV := vals["TT"]
	worstKey := math.Inf(1) // spec margin, or -|deviation from TT| without a spec
	for _, co := range corners {
		v := vals[co.Name]
		cv := CornerValue{Name: co.Name, V: v}
		var key float64
		if hasSpec {
			pass := v >= lo && v <= hi // NaN fails both comparisons
			cv.Pass = &pass
			if !pass {
				out.Pass = false
			}
			margin := math.Min(v-lo, hi-v)
			if !math.IsNaN(margin) && !math.IsInf(margin, 0) {
				cv.Margin = &margin
			}
			key = margin
		} else {
			key = -math.Abs(v - ttV)
		}
		if math.IsNaN(key) {
			key = math.Inf(-1) // an undefined measurement is the worst case
		}
		if key < worstKey {
			worstKey = key
			out.Worst, out.WorstV = co.Name, v
		}
		out.Corners = append(out.Corners, cv)
	}
	if out.Worst == "" {
		// Degenerate sweep (every corner identical): TT is the worst case.
		out.Worst, out.WorstV = "TT", ttV
	}
	res.Corners = out
	return nil
}
