package jobspec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/mathx"
	"repro/internal/netlist"
	"repro/internal/variation"
)

// sizedPool recycles parsed-and-resized decks across the Monte-Carlo
// trials of one centering candidate evaluation. Resizing is applied once
// at parse time — ResizeMOSFET is not idempotent on a reused deck (it
// compounds), so a pooled deck is only ever reset, never re-resized, and
// an errored trial drops its deck entirely.
type sizedPool struct {
	text   string
	scales map[string]float64

	mu   sync.Mutex
	free []*netlist.Deck
}

func (p *sizedPool) get() (*netlist.Deck, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		d.Circuit.ResetSolverState()
		return d, nil
	}
	p.mu.Unlock()
	deck, err := netlist.Parse(p.text)
	if err != nil {
		return nil, err
	}
	for name, sc := range p.scales {
		if sc == 1 {
			continue
		}
		m, ok := deck.MOSFETs[name]
		if !ok {
			return nil, fmt.Errorf("jobspec: centering device %q not in deck", name)
		}
		variation.ResizeMOSFET(m, deck.Tech, deck.TempK, sc)
	}
	return deck, nil
}

func (p *sizedPool) put(d *netlist.Deck) {
	p.mu.Lock()
	p.free = append(p.free, d)
	p.mu.Unlock()
}

// executeCentering runs the design-centering search: a greedy width
// optimizer over the deck's MOSFETs, each candidate sizing scored by a
// common-random-numbers Monte-Carlo yield estimate against the spec
// window.
func executeCentering(ctx context.Context, text string, deck *netlist.Deck, spec *Spec, res *Result, opts Options) error {
	p := spec.Centering
	devices := p.Devices
	if len(devices) == 0 {
		for _, m := range deck.Circuit.MOSFETs() {
			devices = append(devices, m.Name())
		}
	}
	if len(devices) == 0 {
		return fmt.Errorf("jobspec: centering needs a deck with MOSFETs")
	}
	for _, d := range devices {
		// An entry may be a '+'-joined matched group; every member must
		// exist before the search starts.
		for _, m := range strings.Split(d, "+") {
			if _, ok := deck.MOSFETs[m]; !ok {
				return fmt.Errorf("jobspec: centering device %q not in deck", m)
			}
		}
	}
	vspec := variation.Spec{Name: p.Node, Lo: p.SpecLo(), Hi: p.SpecHi()}

	// Each candidate evaluation is a full Monte-Carlo campaign on a deck
	// resized to the candidate sizing. The seed is held fixed across
	// candidates (common random numbers), so every sizing sees the same
	// sequence of dies and the comparison is paired.
	evaluate := func(ctx context.Context, scales map[string]float64) (*variation.MCResult, error) {
		pool := &sizedPool{text: text, scales: scales}
		camp := &variation.Campaign{
			Trials: p.Trials,
			Seed:   spec.Seed,
			Spec:   &vspec,
			From:   0,
			To:     p.Trials,
			Trial: func(rng *mathx.RNG, _ int) (float64, error) {
				die, err := pool.get()
				if err != nil {
					return 0, err
				}
				variation.ApplyRandomMismatch(die.Circuit, die.Tech, variation.NominalCorner(), rng)
				sol, err := die.Circuit.OperatingPoint()
				if err != nil {
					return 0, err
				}
				pool.put(die)
				return sol.Voltage(p.Node), nil
			},
		}
		return camp.Run(ctx)
	}

	accepted := 0
	meter := newMeter("iteration", p.MaxIters, opts)
	ctr := &variation.Centering{
		Devices:  devices,
		Spec:     vspec,
		Step:     p.Step,
		MaxScale: p.MaxScale,
		MaxIters: p.MaxIters,
		Evaluate: func(ctx context.Context, scales map[string]float64) (*variation.MCResult, error) {
			return evaluate(ctx, scales)
		},
	}
	cr, err := ctr.Run(ctx)
	if err != nil {
		if cr == nil || !errors.Is(err, variation.ErrCancelled) {
			return err
		}
		res.Partial = true
		res.Warning = err.Error()
	}

	out := &CenteringOutcome{
		Node:      p.Node,
		Trials:    p.Trials,
		Converged: cr.Converged,
	}
	for _, st := range cr.Trajectory {
		out.Trajectory = append(out.Trajectory, centeringPoint(st))
		if st.Iteration > accepted {
			accepted = st.Iteration
			meter.tick()
		}
	}
	out.Baseline = centeringPoint(cr.Baseline)
	out.Final = centeringPoint(cr.Final)
	// Final widths come from the original (unsized) deck: scale × drawn W.
	names := make([]string, 0, len(cr.Scales))
	for n := range cr.Scales {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sc := cr.Scales[n]
		out.Sizing = append(out.Sizing, DeviceScale{
			Device: n,
			Scale:  sc,
			WidthM: deck.MOSFETs[n].Dev.Params.W * sc,
		})
	}
	res.Centering = out
	return nil
}

// centeringPoint converts an optimizer step to its wire form: NaN
// moments (no finite die) are encoded by absence.
func centeringPoint(st variation.CenteringStep) CenteringPoint {
	p := CenteringPoint{
		Iteration: st.Iteration,
		Device:    st.Device,
		Scale:     st.Scale,
		Yield:     st.Yield,
	}
	if !math.IsNaN(st.Mean) {
		m := st.Mean
		p.Mean = &m
	}
	if !math.IsNaN(st.Sigma) {
		s := st.Sigma
		p.Sigma = &s
	}
	return p
}
