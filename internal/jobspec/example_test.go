package jobspec

import (
	"context"
	"fmt"
)

// exampleDeck is the shared two-transistor inverter the examples run on:
// small enough to solve in microseconds, real enough to show mismatch.
const exampleDeck = `
* cmos inverter at 90nm
.tech 90nm
.temp 300
VDD vdd 0 DC 1.1
VIN in 0 DC 0.55
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.end
`

// ExampleExecute_corners sweeps the five classic global corners and
// judges each against a spec window on V(out).
func ExampleExecute_corners() {
	lo, hi := 0.0, 1.0
	spec := &Spec{
		Analysis: KindCorners,
		Netlist:  exampleDeck,
		Corners:  &CornersParams{Node: "out", Lo: &lo, Hi: &hi},
	}
	spec.ApplyDefaults()

	res, err := Execute(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	c := res.Corners
	fmt.Printf("corners: %d\n", len(c.Corners))
	fmt.Printf("worst: %s\n", c.Worst)
	fmt.Printf("pass: %v\n", c.Pass)
	// Output:
	// corners: 5
	// worst: FS
	// pass: true
}

// ExampleExecute_centering climbs parametric yield by resizing the
// inverter's transistors as one matched group ("MN+MP"): widening both
// preserves the switching point while the Pelgrom 1/√(WL) law shrinks
// the mismatch spread inside the window.
func ExampleExecute_centering() {
	lo, hi := 0.056, 0.079
	spec := &Spec{
		Analysis: KindCentering,
		Netlist:  exampleDeck,
		Seed:     5,
		Centering: &CenteringParams{
			Node: "out", Lo: &lo, Hi: &hi,
			Trials: 96, MaxIters: 3, Devices: []string{"MN+MP"},
		},
	}
	spec.ApplyDefaults()

	res, err := Execute(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	c := res.Centering
	fmt.Printf("yield: %.1f%% -> %.1f%%\n", 100*c.Baseline.Yield.Yield, 100*c.Final.Yield.Yield)
	fmt.Printf("moves: %d\n", len(c.Trajectory)-1)
	// Output:
	// yield: 68.8% -> 85.4%
	// moves: 3
}

// ExampleExecute_signoff runs the composite campaign — corner sweep,
// Monte-Carlo at the worst corner, mission aging, and the wear-out
// failure-rate roll-up — into one compliance report (schema:
// docs/REPORT_SCHEMA.md).
func ExampleExecute_signoff() {
	lo, hi := 0.0, 1.0
	spec := &Spec{
		Analysis: KindSignoff,
		Netlist:  exampleDeck,
		Seed:     3,
		Signoff:  &SignoffParams{Node: "out", Lo: &lo, Hi: &hi, Trials: 48},
	}
	spec.ApplyDefaults()

	res, err := Execute(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	r := res.Signoff
	fmt.Printf("schema: v%d\n", r.SchemaVersion)
	fmt.Printf("worst corner: %s\n", r.Corners.Worst)
	fmt.Printf("yield at %s: %.1f%%\n", r.Yield.Corner, r.Yield.YieldPct)
	fmt.Printf("pass: %v\n", r.Pass)
	for _, sj := range r.Provenance {
		fmt.Printf("  node %s ok=%v\n", sj.Name, sj.Error == "" && !sj.Skipped)
	}
	// Output:
	// schema: v1
	// worst corner: FS
	// yield at FS: 100.0%
	// pass: true
	//   node corners ok=true
	//   node mc ok=true
	//   node age ok=true
	//   node wearout ok=true
}
