package jobspec

import (
	"context"
	"testing"
)

func TestCanonicalHash(t *testing.T) {
	base := func() *Spec {
		s := &Spec{Analysis: KindMC, Netlist: inverterDeck, Seed: 3,
			MC: &MCParams{Trials: 10, Node: "out"}}
		s.ApplyDefaults()
		return s
	}
	a, b := base(), base()
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("identical specs hash differently")
	}
	if h := a.CanonicalHash(); len(h) != 64 {
		t.Errorf("hash %q is not hex SHA-256", h)
	}

	// Any analysis-relevant field change moves the hash.
	seed := base()
	seed.Seed = 4
	if seed.CanonicalHash() == a.CanonicalHash() {
		t.Error("seed change did not change the hash")
	}
	deck := base()
	deck.Netlist += "\n* trailing comment"
	if deck.CanonicalHash() == a.CanonicalHash() {
		t.Error("netlist change did not change the hash")
	}
	trials := base()
	trials.MC.Trials = 11
	if trials.CanonicalHash() == a.CanonicalHash() {
		t.Error("trial-count change did not change the hash")
	}

	// no_cache is a delivery preference, not an input: it is excluded so
	// an opted-out run still produces the entry an opted-in resubmission
	// of the same work would look up.
	opted := base()
	opted.NoCache = true
	if opted.CanonicalHash() != a.CanonicalHash() {
		t.Error("no_cache leaked into the canonical hash")
	}

	// A sparse spec after defaulting is the same work as the explicit
	// form, so the two must collide on purpose.
	sparse := &Spec{Analysis: KindMC, Netlist: inverterDeck,
		MC: &MCParams{Trials: 10, Node: "out"}}
	sparse.ApplyDefaults()
	explicit := base()
	explicit.Seed = 1
	if sparse.CanonicalHash() != explicit.CanonicalHash() {
		t.Error("defaults-applied sparse spec does not hash like its explicit equivalent")
	}
}

func TestResultEchoesEffectiveSeed(t *testing.T) {
	// A sparse spec leaves Seed 0; ApplyDefaults rewrites it to 1 and the
	// result must echo that effective value, or a client could never
	// learn what to resubmit for a reproducible re-run.
	spec := &Spec{Analysis: KindMC, Netlist: inverterDeck,
		MC: &MCParams{Trials: 4, Node: "out"}}
	spec.ApplyDefaults()
	if spec.Seed != 1 {
		t.Fatalf("ApplyDefaults seed = %d, want 1", spec.Seed)
	}
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 1 {
		t.Errorf("result seed = %d, want the effective 1", res.Seed)
	}

	expl := &Spec{Analysis: KindMC, Netlist: inverterDeck, Seed: 42,
		MC: &MCParams{Trials: 4, Node: "out"}}
	expl.ApplyDefaults()
	res2, err := Execute(context.Background(), expl)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seed != 42 {
		t.Errorf("result seed = %d, want the explicit 42", res2.Seed)
	}
}
