package em

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func testWire() *Wire {
	return &Wire{
		Name: "w", Width: 0.2e-6, Thickness: 0.2e-6,
		Length: 100e-6, Current: 1e-4,
	}
}

func TestCurrentDensity(t *testing.T) {
	w := testWire()
	// 1e-4 A over 4e-14 m² = 2.5e9 A/m².
	if !mathx.ApproxEqual(w.CurrentDensity(), 2.5e9, 1e-12, 0) {
		t.Errorf("J = %g", w.CurrentDensity())
	}
	w.Current = -1e-4
	if !mathx.ApproxEqual(w.CurrentDensity(), 2.5e9, 1e-12, 0) {
		t.Error("density must use |I|")
	}
}

func TestBlackJSquaredLaw(t *testing.T) {
	m := DefaultBlack()
	w := testWire()
	w.Length = 1e-2 // long enough to not be Blech-immune
	base := m.MTTF(w, 378)
	w2 := *w
	w2.Current = 2e-4
	// Doubling J at fixed geometry quarters the lifetime (N = 2).
	if !mathx.ApproxEqual(m.MTTF(&w2, 378), base/4, 1e-9, 0) {
		t.Errorf("J² law broken: %g vs %g/4", m.MTTF(&w2, 378), base)
	}
}

func TestBlackTemperatureAcceleration(t *testing.T) {
	m := DefaultBlack()
	w := testWire()
	w.Length = 1e-2
	cold := m.MTTF(w, 300)
	hot := m.MTTF(w, 400)
	if hot >= cold {
		t.Fatalf("hotter wire must die sooner: %g >= %g", hot, cold)
	}
	// Arrhenius ratio check.
	want := math.Exp(m.Ea/(boltzmannEV*300) - m.Ea/(boltzmannEV*400))
	if !mathx.ApproxEqual(cold/hot, want, 1e-9, 0) {
		t.Errorf("Arrhenius ratio %g, want %g", cold/hot, want)
	}
}

func TestBlackMagnitude(t *testing.T) {
	// The calibration promise: 0.2×0.2 µm, 0.1 mA, 378 K → years.
	m := DefaultBlack()
	w := testWire()
	w.Length = 1e-2
	mttf := m.MTTF(w, 378)
	const year = 365.25 * 24 * 3600
	if mttf < 0.3*year || mttf > 300*year {
		t.Errorf("MTTF = %g years implausible", mttf/year)
	}
}

func TestBlechImmunity(t *testing.T) {
	m := DefaultBlack()
	short := testWire()
	short.Length = 50e-6 // j·L = 2.5e9 × 5e-5 = 1.25e5 < 3e5
	if !m.BlechImmune(short) {
		t.Error("short wire should be Blech-immune")
	}
	if !math.IsInf(m.MTTF(short, 378), 1) {
		t.Error("immune wire must have infinite MTTF")
	}
	long := testWire()
	long.Length = 500e-6 // j·L = 1.25e6 > 3e5
	if m.BlechImmune(long) {
		t.Error("long wire should not be immune")
	}
}

func TestBambooAndLayoutBonuses(t *testing.T) {
	m := DefaultBlack()
	narrow := testWire()
	narrow.Length = 1e-2
	narrow.Width = 0.2e-6 // < 0.3 µm grain: bamboo
	wide := *narrow
	wide.Width = 1e-6
	wide.Current = narrow.Current * 5 // same J
	if !m.IsBamboo(narrow) || m.IsBamboo(&wide) {
		t.Fatal("bamboo classification wrong")
	}
	// Same J and proportional area: without the bamboo bonus the wide wire
	// would live exactly 5× longer (A in the numerator); confirm the
	// narrow wire gets its ×3 bonus on top.
	ratio := m.MTTF(&wide, 378) / m.MTTF(narrow, 378)
	if !mathx.ApproxEqual(ratio, 5.0/3.0, 1e-9, 0) {
		t.Errorf("bamboo bonus wrong: ratio = %g, want 5/3", ratio)
	}
	slotted := wide
	slotted.Slotted = true
	if !mathx.ApproxEqual(m.MTTF(&slotted, 378)/m.MTTF(&wide, 378), m.SlotBonus, 1e-9, 0) {
		t.Error("slot bonus not applied")
	}
	resv := wide
	resv.ViaReservoir = true
	if !mathx.ApproxEqual(m.MTTF(&resv, 378)/m.MTTF(&wide, 378), m.ReservoirBonus, 1e-9, 0) {
		t.Error("reservoir bonus not applied")
	}
}

func TestJMaxInvertsMTTF(t *testing.T) {
	m := DefaultBlack()
	area := 4e-14
	target := 10 * 365.25 * 24 * 3600.0
	jmax := m.JMax(target, 378, area)
	// A wire at exactly jmax must live exactly the target (no bonuses).
	w := &Wire{Name: "x", Width: 0.4e-6, Thickness: 1e-7, Length: 1, Current: jmax * area}
	if m.IsBamboo(w) {
		t.Fatal("test wire accidentally bamboo")
	}
	if got := m.MTTF(w, 378); !mathx.ApproxEqual(got, target, 1e-9, 0) {
		t.Errorf("MTTF at JMax = %g, want %g", got, target)
	}
}

func TestWidthFix(t *testing.T) {
	m := DefaultBlack()
	w := testWire()
	w.Width = 0.5e-6 // not bamboo
	w.Length = 1e-2
	w.Current = 2e-3 // hot wire
	target := 10 * 365.25 * 24 * 3600.0
	if m.MTTF(w, 378) >= target {
		t.Fatal("test wire unexpectedly passes")
	}
	fixed := *w
	fixed.Width = m.WidthFix(w, target, 378)
	if fixed.Width <= w.Width {
		t.Fatal("fix did not widen the wire")
	}
	got := m.MTTF(&fixed, 378)
	if !mathx.ApproxEqual(got, target, 1e-6, 0) {
		t.Errorf("widened wire MTTF = %g, want %g", got, target)
	}
	// A passing wire needs no fix.
	ok := testWire()
	ok.Length = 50e-6
	if m.WidthFix(ok, target, 378) != ok.Width {
		t.Error("immune wire got widened")
	}
}

func TestCheckReport(t *testing.T) {
	m := DefaultBlack()
	target := 10 * 365.25 * 24 * 3600.0
	good := testWire()
	good.Name = "good"
	good.Length = 50e-6 // immune
	bad := testWire()
	bad.Name = "bad"
	bad.Width = 0.5e-6
	bad.Length = 1e-2
	bad.Current = 5e-3
	worse := *bad
	worse.Name = "worse"
	worse.Current = 8e-3
	r := m.Check([]*Wire{good, bad, &worse}, target, 378)
	if r.Pass() {
		t.Fatal("report should fail")
	}
	if r.Checked != 3 || r.Immune != 1 {
		t.Errorf("checked=%d immune=%d", r.Checked, r.Immune)
	}
	if len(r.Violations) != 2 || r.Violations[0].Wire.Name != "worse" {
		t.Errorf("violations not sorted worst-first: %+v", r.Violations)
	}
	if r.WorstWire != "worse" {
		t.Errorf("worst wire = %q", r.WorstWire)
	}
	for _, v := range r.Violations {
		if v.SuggestedWidth <= v.Wire.Width {
			t.Error("violation carries no widening fix")
		}
	}
	// All-immune network passes.
	r2 := m.Check([]*Wire{good}, target, 378)
	if !r2.Pass() || !math.IsInf(r2.WorstMTTF, 1) {
		t.Error("immune network should pass with infinite worst MTTF")
	}
}

func TestSeriesMTTF(t *testing.T) {
	if got := SeriesMTTF([]float64{100, 100}); !mathx.ApproxEqual(got, 50, 1e-12, 0) {
		t.Errorf("series of two equal = %g, want 50", got)
	}
	if !math.IsInf(SeriesMTTF([]float64{math.Inf(1), math.Inf(1)}), 1) {
		t.Error("all-immortal series must be immortal")
	}
	if got := SeriesMTTF([]float64{math.Inf(1), 42}); !mathx.ApproxEqual(got, 42, 1e-12, 0) {
		t.Errorf("immortal member must not shorten life: %g", got)
	}
	if SeriesMTTF([]float64{0, 10}) != 0 {
		t.Error("zero-MTTF member dominates")
	}
}

func TestMTTFMonotoneInCurrentProperty(t *testing.T) {
	m := DefaultBlack()
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		w := &Wire{
			Name: "p", Width: 0.4e-6 + r.Float64()*1e-6,
			Thickness: 0.2e-6, Length: 1e-2,
			Current: 1e-4 + r.Float64()*1e-3,
		}
		w2 := *w
		w2.Current = w.Current * (1.1 + r.Float64())
		return m.MTTF(&w2, 350) < m.MTTF(w, 350)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCurrentImmortal(t *testing.T) {
	m := DefaultBlack()
	w := testWire()
	w.Current = 0
	if !math.IsInf(m.MTTF(w, 400), 1) {
		t.Error("zero-current wire must be immortal")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	w := &Wire{Name: "bad", Width: 0, Thickness: 1e-7, Current: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.CurrentDensity()
}

func TestWireResistance(t *testing.T) {
	// 100 µm of 0.2×0.2 µm copper: R = 2.2e-8 · 1e-4 / 4e-14 = 55 Ω.
	w := testWire()
	if got := WireResistance(w); !mathx.ApproxEqual(got, 55, 1e-9, 0) {
		t.Errorf("WireResistance = %g, want 55", got)
	}
	// Doubling the width halves the resistance.
	w2 := *w
	w2.Width *= 2
	if got := WireResistance(&w2); !mathx.ApproxEqual(got, 27.5, 1e-9, 0) {
		t.Errorf("wide wire = %g, want 27.5", got)
	}
}
