package em

import (
	"fmt"

	"repro/internal/circuit"
)

// Binding ties one circuit resistor — standing in for a wire's parasitic
// resistance — to the physical wire geometry whose EM life it determines.
// This is the "EM-aware design flow" hook of §3.4: currents come from the
// electrical solution, geometry from layout.
type Binding struct {
	// Resistor names the circuit element carrying the wire's current.
	Resistor string
	// Wire is the physical segment; its Current field is overwritten.
	Wire *Wire
}

// AssignCurrents solves nothing itself: given an already-solved DC
// solution, it computes each bound resistor's branch current from the node
// voltages and installs it on the wire. Wires can then go straight into
// BlackModel.Check.
func AssignCurrents(c *circuit.Circuit, sol *circuit.Solution, bindings []Binding) error {
	for _, b := range bindings {
		if b.Wire == nil {
			return fmt.Errorf("em: binding for %q has no wire", b.Resistor)
		}
		a, k, ohms, err := c.ResistorInfo(b.Resistor)
		if err != nil {
			return err
		}
		b.Wire.Current = (sol.Voltage(a) - sol.Voltage(k)) / ohms
	}
	return nil
}

// CheckCircuit runs the full extract-and-check flow: solve the operating
// point, assign currents to the bound wires, and produce the EM report.
func (m *BlackModel) CheckCircuit(c *circuit.Circuit, bindings []Binding, targetLife, tempK float64) (*Report, error) {
	sol, err := c.OperatingPoint()
	if err != nil {
		return nil, fmt.Errorf("em: operating point: %w", err)
	}
	if err := AssignCurrents(c, sol, bindings); err != nil {
		return nil, err
	}
	wires := make([]*Wire, len(bindings))
	for i, b := range bindings {
		wires[i] = b.Wire
	}
	return m.Check(wires, targetLife, tempK), nil
}
