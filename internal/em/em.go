// Package em implements the electromigration analysis of the paper's
// Section 3.4: Black's mean-time-to-failure law (Eq. 4), the Blech
// short-length immunity criterion, the bamboo narrow-wire effect, and the
// layout-level mitigations (wire widening, slotted wires, via reservoirs)
// wrapped in an EM sign-off checker that walks an interconnect network.
package em

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// boltzmannEV is k in eV/K.
const boltzmannEV = 8.617333262e-5

// Wire is one interconnect segment.
type Wire struct {
	// Name identifies the segment.
	Name string
	// Width and Thickness are the cross-section in metres.
	Width, Thickness float64
	// Length is the segment length in metres.
	Length float64
	// Current is the DC (or RMS-equivalent) current in amperes.
	Current float64
	// Slotted marks a wide wire laid out with slots, which improves EM
	// robustness by forcing bamboo-like grain structure.
	Slotted bool
	// ViaReservoir marks vias with reservoir extensions (metal overhang),
	// which buys extra void-growth margin.
	ViaReservoir bool
}

// Area returns the cross-section area in m².
func (w *Wire) Area() float64 { return w.Width * w.Thickness }

// CurrentDensity returns |J| in A/m².
func (w *Wire) CurrentDensity() float64 {
	a := w.Area()
	if a <= 0 {
		panic(fmt.Sprintf("em: wire %q has non-positive cross-section", w.Name))
	}
	return math.Abs(w.Current) / a
}

// BlackModel parameterises Eq. 4: MTTF = C · A / J^N · exp(Ea/kT).
type BlackModel struct {
	// C is the technology prefactor; units chosen so MTTF is in seconds
	// with A in m² and J in A/m².
	C float64
	// N is the current-density exponent (2 in Black's classic form).
	N float64
	// Ea is the activation energy in eV (0.7-0.9 for Al, ~0.9 for Cu).
	Ea float64
	// BlechProduct is the critical j·L product in A/m below which the
	// back-stress halts migration entirely.
	BlechProduct float64
	// GrainSize is the median metal grain diameter in metres; wires
	// narrower than this develop a bamboo structure.
	GrainSize float64
	// BambooBonus multiplies the MTTF of bamboo wires.
	BambooBonus float64
	// SlotBonus multiplies the MTTF of slotted wide wires.
	SlotBonus float64
	// ReservoirBonus multiplies the MTTF of via-reservoir segments.
	ReservoirBonus float64
}

// DefaultBlack returns a copper-flavoured calibration: a 0.2×0.2 µm wire
// carrying 0.1 mA (J = 2.5 MA/cm²) at 378 K has an MTTF of a few years,
// with ~0.9 eV activation.
func DefaultBlack() *BlackModel {
	return &BlackModel{
		C:              1.6e28,
		N:              2,
		Ea:             0.9,
		BlechProduct:   3e5, // 3000 A/cm
		GrainSize:      0.3e-6,
		BambooBonus:    3,
		SlotBonus:      2,
		ReservoirBonus: 1.5,
	}
}

// MTTF returns the mean time to failure in seconds of a wire at
// temperature tempK, per Eq. 4 with the layout bonuses applied. Wires that
// satisfy the Blech criterion are immortal (+Inf). Zero-current wires are
// immortal too.
func (m *BlackModel) MTTF(w *Wire, tempK float64) float64 {
	j := w.CurrentDensity()
	if j == 0 {
		return math.Inf(1)
	}
	if m.BlechImmune(w) {
		return math.Inf(1)
	}
	mttf := m.C * w.Area() / math.Pow(j, m.N) * math.Exp(m.Ea/(boltzmannEV*tempK))
	if m.IsBamboo(w) {
		mttf *= m.BambooBonus
	}
	if w.Slotted {
		mttf *= m.SlotBonus
	}
	if w.ViaReservoir {
		mttf *= m.ReservoirBonus
	}
	return mttf
}

// BlechImmune reports whether the wire's j·L product is below the critical
// back-stress threshold, making it immune to EM ("wires with a limited
// length have been shown to be insensitive to EM").
func (m *BlackModel) BlechImmune(w *Wire) bool {
	return w.CurrentDensity()*w.Length < m.BlechProduct
}

// IsBamboo reports whether the wire is narrow enough for bamboo grain
// structure ("better EM results with wire widths smaller than a particular
// value").
func (m *BlackModel) IsBamboo(w *Wire) bool {
	return w.Width < m.GrainSize
}

// JMax returns the maximum allowed current density (A/m²) for a target
// lifetime at tempK for a wire of area a, inverting Eq. 4 (without layout
// bonuses — they are margin, not entitlement).
func (m *BlackModel) JMax(targetLife, tempK, area float64) float64 {
	if targetLife <= 0 || area <= 0 {
		panic(fmt.Sprintf("em: bad JMax arguments life=%g area=%g", targetLife, area))
	}
	return math.Pow(m.C*area*math.Exp(m.Ea/(boltzmannEV*tempK))/targetLife, 1/m.N)
}

// WidthFix returns the minimum width (m) that brings the wire to the
// target lifetime at tempK keeping its thickness and current — the
// paper's primary mitigation: "wires must be widened to reduce the
// degradation". Both J and A depend on width, so the closed form follows
// from MTTF ∝ W^(N+1).
func (m *BlackModel) WidthFix(w *Wire, targetLife, tempK float64) float64 {
	cur := m.MTTF(w, tempK)
	if math.IsInf(cur, 1) || cur >= targetLife {
		return w.Width
	}
	// MTTF ∝ Area/J^N = (W·T)^(N+1) / |I|^N · const, so scale width by
	// (target/cur)^(1/(N+1)).
	return w.Width * math.Pow(targetLife/cur, 1/(m.N+1))
}

// Violation is one failed EM check.
type Violation struct {
	Wire *Wire
	// MTTF is the computed lifetime in seconds.
	MTTF float64
	// JdensityAm2 is the current density in A/m².
	JdensityAm2 float64
	// SuggestedWidth is the widening fix in metres.
	SuggestedWidth float64
}

// Report is the result of an EM sign-off pass.
type Report struct {
	// TargetLife is the required lifetime in seconds.
	TargetLife float64
	// TempK is the analysis temperature.
	TempK float64
	// Checked counts analysed wires, Immune the Blech-immune subset.
	Checked, Immune int
	// Violations lists failing wires, worst first.
	Violations []Violation
	// WorstMTTF is the shortest lifetime seen (Inf when all immune).
	WorstMTTF float64
	// WorstWire names the wire with the shortest lifetime.
	WorstWire string
}

// Pass reports whether the network meets the lifetime target.
func (r *Report) Pass() bool { return len(r.Violations) == 0 }

// Check runs EM sign-off over a set of wires against a lifetime target.
func (m *BlackModel) Check(wires []*Wire, targetLife, tempK float64) *Report {
	pm := met.Load()
	var sp obs.Span
	if pm != nil {
		sp = obs.StartSpan(pm.checkSeconds)
		defer func() { sp.End() }()
	}
	r := &Report{TargetLife: targetLife, TempK: tempK, WorstMTTF: math.Inf(1)}
	for _, w := range wires {
		r.Checked++
		if m.BlechImmune(w) {
			r.Immune++
			continue
		}
		mttf := m.MTTF(w, tempK)
		if mttf < r.WorstMTTF {
			r.WorstMTTF = mttf
			r.WorstWire = w.Name
		}
		if mttf < targetLife {
			r.Violations = append(r.Violations, Violation{
				Wire:           w,
				MTTF:           mttf,
				JdensityAm2:    w.CurrentDensity(),
				SuggestedWidth: m.WidthFix(w, targetLife, tempK),
			})
		}
	}
	sort.Slice(r.Violations, func(i, j int) bool {
		return r.Violations[i].MTTF < r.Violations[j].MTTF
	})
	if pm != nil {
		pm.wiresChecked.Add(int64(r.Checked))
		pm.violations.Add(int64(len(r.Violations)))
	}
	return r
}

// SeriesMTTF combines per-segment lifetimes into a net lifetime under the
// weakest-link (series) assumption with exponential failure rates:
// 1/MTTF_net = Σ 1/MTTF_i.
func SeriesMTTF(mttfs []float64) float64 {
	sum := 0.0
	for _, m := range mttfs {
		if m <= 0 {
			return 0
		}
		if !math.IsInf(m, 1) {
			sum += 1 / m
		}
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 1 / sum
}

// WireResistance returns the electrical resistance of a wire segment from
// its geometry: R = ρ·L/(W·T), using the effective resistivity of damascene
// copper interconnect (bulk 1.7e-8 Ω·m plus ~30 % for barrier and
// scattering). Parasitic-aware flows use it to generate the resistors that
// carry wire currents in the electrical netlist.
func WireResistance(w *Wire) float64 {
	const rhoEff = 2.2e-8 // Ω·m
	return rhoEff * w.Length / w.Area()
}
