package em_test

import (
	"fmt"

	"repro/internal/em"
)

// ExampleBlackModel_MTTF evaluates Eq. 4 on a hot wire and prints the
// widening fix that restores a ten-year life.
func ExampleBlackModel_MTTF() {
	model := em.DefaultBlack()
	w := &em.Wire{
		Name: "m2_strap", Width: 0.4e-6, Thickness: 0.3e-6,
		Length: 300e-6, Current: 2.5e-3,
	}
	const year = 365.25 * 24 * 3600
	mttf := model.MTTF(w, 378)
	fix := model.WidthFix(w, 10*year, 378)
	fmt.Printf("MTTF %.2f years; widen %.1f um -> %.1f um\n",
		mttf/year, w.Width*1e6, fix*1e6)
	// Output:
	// MTTF 0.14 years; widen 0.4 um -> 1.7 um
}

// ExampleBlackModel_BlechImmune shows the short-wire immunity criterion.
func ExampleBlackModel_BlechImmune() {
	model := em.DefaultBlack()
	w := &em.Wire{Name: "stub", Width: 0.2e-6, Thickness: 0.3e-6,
		Length: 15e-6, Current: 0.8e-3}
	fmt.Printf("j*L = %.2g A/m, immune: %v\n",
		w.CurrentDensity()*w.Length, model.BlechImmune(w))
	// Output:
	// j*L = 2e+05 A/m, immune: true
}
