package em

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/mathx"
)

// ladder builds a supply ladder: V1 -> Rtrunk -> mid -> two parallel
// branches to ground.
func ladder() (*circuit.Circuit, []Binding) {
	c := circuit.New()
	c.AddVSource("V1", "in", "0", circuit.DC(1.0))
	c.AddResistor("Rtrunk", "in", "mid", 10)
	c.AddResistor("RbrA", "mid", "0", 100)
	c.AddResistor("RbrB", "mid", "0", 400)
	bindings := []Binding{
		{Resistor: "Rtrunk", Wire: &Wire{Name: "trunk", Width: 0.5e-6, Thickness: 0.2e-6, Length: 1e-3}},
		{Resistor: "RbrA", Wire: &Wire{Name: "brA", Width: 0.3e-6, Thickness: 0.2e-6, Length: 1e-3}},
		{Resistor: "RbrB", Wire: &Wire{Name: "brB", Width: 0.3e-6, Thickness: 0.2e-6, Length: 1e-3}},
	}
	return c, bindings
}

func TestAssignCurrentsKCL(t *testing.T) {
	c, bindings := ladder()
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignCurrents(c, sol, bindings); err != nil {
		t.Fatal(err)
	}
	itrunk := bindings[0].Wire.Current
	ia := bindings[1].Wire.Current
	ib := bindings[2].Wire.Current
	if itrunk <= 0 || ia <= 0 || ib <= 0 {
		t.Fatalf("currents should flow downstream: %g %g %g", itrunk, ia, ib)
	}
	// Kirchhoff: trunk feeds both branches.
	if !mathx.ApproxEqual(itrunk, ia+ib, 1e-9, 1e-15) {
		t.Errorf("KCL violated: %g != %g + %g", itrunk, ia, ib)
	}
	// The 100 Ω branch carries 4x the 400 Ω one.
	if !mathx.ApproxEqual(ia/ib, 4, 1e-9, 0) {
		t.Errorf("current division wrong: %g", ia/ib)
	}
}

func TestCheckCircuitFlow(t *testing.T) {
	c, bindings := ladder()
	m := DefaultBlack()
	rep, err := m.CheckCircuit(c, bindings, 10*365.25*86400, 378)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 3 {
		t.Errorf("checked %d wires", rep.Checked)
	}
	// The trunk (~9.3 mA through 0.1 µm² ≈ 9 MA/cm²) must be flagged.
	found := false
	for _, v := range rep.Violations {
		if v.Wire.Name == "trunk" {
			found = true
		}
	}
	if !found {
		t.Error("hot trunk not flagged")
	}
}

func TestAssignCurrentsErrors(t *testing.T) {
	c, bindings := ladder()
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	bad := []Binding{{Resistor: "nope", Wire: &Wire{Name: "x", Width: 1e-6, Thickness: 1e-7}}}
	if err := AssignCurrents(c, sol, bad); err == nil {
		t.Error("unknown resistor accepted")
	}
	if err := AssignCurrents(c, sol, []Binding{{Resistor: "Rtrunk"}}); err == nil {
		t.Error("nil wire accepted")
	}
	// Binding a non-resistor element.
	badType := []Binding{{Resistor: "V1", Wire: bindings[0].Wire}}
	if err := AssignCurrents(c, sol, badType); err == nil {
		t.Error("non-resistor element accepted")
	}
}

func TestNegativeCurrentHandled(t *testing.T) {
	// A resistor whose defined a→b direction opposes the current flow
	// yields a negative Current; EM math must use the magnitude.
	c := circuit.New()
	c.AddVSource("V1", "in", "0", circuit.DC(1.0))
	c.AddResistor("R1", "0", "in", 100) // reversed terminals
	sol, err := c.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	w := &Wire{Name: "w", Width: 0.5e-6, Thickness: 0.2e-6, Length: 1e-2}
	if err := AssignCurrents(c, sol, []Binding{{Resistor: "R1", Wire: w}}); err != nil {
		t.Fatal(err)
	}
	if w.Current >= 0 {
		t.Fatalf("expected negative current, got %g", w.Current)
	}
	m := DefaultBlack()
	if mttf := m.MTTF(w, 378); math.IsInf(mttf, 1) || mttf <= 0 {
		t.Errorf("MTTF with negative current = %g", mttf)
	}
}
