package em

import (
	"sync/atomic"

	"repro/internal/obs"
)

// pkgMetrics holds the electromigration checker's instruments — the EM
// side of the per-mechanism accounting (Eq. 4), next to the ΔVT mechanisms
// instrumented in internal/aging.
type pkgMetrics struct {
	wiresChecked *obs.Counter
	violations   *obs.Counter
	checkSeconds *obs.Histogram
}

var met atomic.Pointer[pkgMetrics]

// SetMetrics wires the EM sign-off instrumentation into reg, or disables
// it when reg is nil.
//
// Metrics registered:
//
//	em_wires_checked_total  count  wires assessed by BlackModel.Check
//	em_violations_total     count  lifetime/Blech violations found
//	em_check_seconds        s      per-Check latency histogram
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&pkgMetrics{
		wiresChecked: reg.Counter("em_wires_checked_total", "1", "wires assessed by EM sign-off"),
		violations:   reg.Counter("em_violations_total", "1", "EM sign-off violations"),
		checkSeconds: reg.Histogram("em_check_seconds", "s", "EM sign-off Check latency", nil),
	})
}
