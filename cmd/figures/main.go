// Command figures regenerates the paper's evaluation artefacts (Figures
// 1-6, Equations 1-4) as text series.
//
// Usage:
//
//	figures            # everything
//	figures -only fig4 # one artefact: fig1..fig6, eq1..eq4
//	figures -fast      # reduced Monte-Carlo sizes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	only := flag.String("only", "", "generate a single artefact: fig1..fig6, eq1..eq4")
	fast := flag.Bool("fast", false, "reduced Monte-Carlo sizes")
	flag.Parse()

	nMC := 20000
	dacMC := 60
	if *fast {
		nMC = 3000
		dacMC = 30
	}

	gens := []struct {
		key string
		run func() string
	}{
		{"fig1", func() string { _, s := figures.Fig1(nMC, 1); return s }},
		{"fig2", func() string { _, s := figures.Fig2(); return s }},
		{"fig3", func() string { _, s := figures.Fig3(); return s }},
		{"fig4", func() string { _, s := figures.Fig4Default(); return s }},
		{"fig5", func() string { _, s := figures.Fig5(dacMC, 3); return s }},
		{"fig6", func() string { _, s := figures.Fig6(30, 10); return s }},
		{"eq1", func() string { _, s := figures.Eq1(nMC, 5); return s }},
		{"eq2", func() string { _, s := figures.Eq2(); return s }},
		{"eq3", func() string { _, s := figures.Eq3(); return s }},
		{"eq4", func() string { _, s := figures.Eq4(); return s }},
		{"scaling", func() string { _, s := figures.ScalingStudy(); return s }},
		{"ring", func() string { _, s := figures.Ring(); return s }},
		{"immunity", func() string { _, s := figures.Immunity(); return s }},
	}

	found := false
	for _, g := range gens {
		if *only != "" && g.key != *only {
			continue
		}
		found = true
		fmt.Println(g.run())
	}
	if !found {
		fmt.Fprintf(os.Stderr, "figures: unknown artefact %q (use fig1..fig6, eq1..eq4)\n", *only)
		os.Exit(1)
	}
}
