package main

import (
	"context"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// runServe runs relsim as a long-running job service: the internal/serve
// API and the observability endpoints share one listener, per-job
// defaults come from the same flags the one-shot mode uses, and SIGINT/
// SIGTERM trigger a graceful drain in which running jobs persist partial
// results. With -data-dir the server is durable: job lifecycles are
// journaled, terminal results snapshotted, identical resubmissions
// answered from the spec-keyed cache, and a restart against the same
// directory restores the previous campaign — terminal jobs served
// as-is, queued jobs re-run, interrupted Monte-Carlo campaigns resumed
// from their last journaled chunk checkpoint, and other interrupted
// jobs failed with a structured cause. With -peers, campaign shards
// (mc.shards > 1) are dispatched to peer relsim servers. With -tenants,
// the API requires per-tenant keys and schedules tenants by weighted
// fair share under their configured quotas. With -fleet, the server
// federates with the configured nodes: forwarded job lookups, health-
// probed shard placement, fleet-wide max_running and journal-replay
// failover for dead peers.
func runServe(addr string, queueDepth, workers int, defaultTimeout, drain time.Duration, metricsAddr string, progress bool, dataDir string, keepJobs int, keepAge time.Duration, peers []string, tenantsFile, fleetFile string) {
	reg := obs.NewRegistry()
	core.EnableMetrics(reg)

	var tenantCfgs []serve.TenantConfig
	if tenantsFile != "" {
		var err error
		tenantCfgs, err = serve.LoadTenants(tenantsFile)
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("multi-tenant mode: %d tenant(s) from %s", len(tenantCfgs), tenantsFile)
	}

	var fleetCfg *serve.FleetConfig
	if fleetFile != "" {
		var err error
		fleetCfg, err = serve.LoadFleet(fleetFile)
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		log.Printf("fleet mode: node %s of %d from %s", fleetCfg.Self, len(fleetCfg.Nodes), fleetFile)
	}

	var st *store.Store
	if dataDir != "" {
		var err error
		st, err = store.Open(dataDir, reg, store.Options{})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		defer st.Close()
		if rec := st.Recovered(); len(rec) > 0 {
			var terminal, queued, interrupted, resumable int
			for _, r := range rec {
				switch r.State {
				case store.StateQueued:
					queued++
				case store.StateInterrupted:
					if len(r.Checkpoints) > 0 {
						resumable++
					} else {
						interrupted++
					}
				default:
					terminal++
				}
			}
			log.Printf("recovered %d job(s) from %s: %d terminal, %d re-queued, %d resumable from checkpoints, %d interrupted",
				len(rec), dataDir, terminal, queued, resumable, interrupted)
		}
	}

	srv := serve.NewServer(serve.Config{
		QueueDepth:      queueDepth,
		Workers:         workers,
		DefaultTimeout:  defaultTimeout,
		Registry:        reg,
		Store:           st,
		MaxTerminalJobs: keepJobs,
		MaxTerminalAge:  keepAge,
		Peers:           peers,
		Tenants:         tenantCfgs,
		Fleet:           fleetCfg,
	})

	// Listen synchronously so a bad address or busy port is a startup
	// failure, not a log line racing the first request.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("serving jobs on http://%s/v1/jobs (queue %d, metrics on /metrics)", ln.Addr(), queueDepth)
	if metricsAddr != "" {
		// The job mux already serves /metrics; honour -metrics-addr anyway
		// for scrapers pointed at a dedicated port.
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("metrics server: %v", err)
		}
		log.Printf("serving metrics on http://%s/metrics", mln.Addr())
		go func() {
			if err := http.Serve(mln, obs.Handler(reg)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	if progress {
		pub := obs.NewPublisher(reg, time.Second, &obs.LogSink{
			W: os.Stderr, Prefix: "relsim: ",
			Keys: []string{
				"serve_queue_depth",
				"serve_jobs_inflight",
				"serve_jobs_submitted_total",
				"variation_trial_seconds",
			},
		})
		defer pub.Stop()
	}

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining jobs (budget %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain budget exhausted: running jobs cancelled, partial results persisted")
	}
	httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	_ = httpSrv.Shutdown(httpCtx)
	log.Printf("server stopped")
}
