package main

import (
	"context"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// runServe runs relsim as a long-running job service: the internal/serve
// API and the observability endpoints share one listener, per-job
// defaults come from the same flags the one-shot mode uses, and SIGINT/
// SIGTERM trigger a graceful drain in which running jobs persist partial
// results.
func runServe(addr string, queueDepth, workers int, defaultTimeout, drain time.Duration, metricsAddr string, progress bool) {
	reg := obs.NewRegistry()
	core.EnableMetrics(reg)

	srv := serve.NewServer(serve.Config{
		QueueDepth:     queueDepth,
		Workers:        workers,
		DefaultTimeout: defaultTimeout,
		Registry:       reg,
	})

	// Listen synchronously so a bad address or busy port is a startup
	// failure, not a log line racing the first request.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("serving jobs on http://%s/v1/jobs (queue %d, metrics on /metrics)", ln.Addr(), queueDepth)
	if metricsAddr != "" {
		// The job mux already serves /metrics; honour -metrics-addr anyway
		// for scrapers pointed at a dedicated port.
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("metrics server: %v", err)
		}
		log.Printf("serving metrics on http://%s/metrics", mln.Addr())
		go func() {
			if err := http.Serve(mln, obs.Handler(reg)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	if progress {
		pub := obs.NewPublisher(reg, time.Second, &obs.LogSink{
			W: os.Stderr, Prefix: "relsim: ",
			Keys: []string{
				"serve_queue_depth",
				"serve_jobs_inflight",
				"serve_jobs_submitted_total",
				"variation_trial_seconds",
			},
		})
		defer pub.Stop()
	}

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining jobs (budget %s)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain budget exhausted: running jobs cancelled, partial results persisted")
	}
	httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	_ = httpSrv.Shutdown(httpCtx)
	log.Printf("server stopped")
}
