package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/jobspec"
	"repro/internal/mathx"
	"repro/internal/report"
)

// render prints a jobspec.Result the way relsim always has: tables, CSV
// and histograms to stdout; warnings and failure accounting to stderr.
// The renderer consumes only the structured Result, so the server's JSON
// clients and the CLI see the same numbers.
func render(spec *jobspec.Spec, res *jobspec.Result) {
	switch res.Kind {
	case jobspec.KindOP:
		renderOP(res.OP)
	case jobspec.KindTran, jobspec.KindSweep, jobspec.KindAC:
		fmt.Print(report.CSV(res.Series.Headers, res.Series.Rows))
	case jobspec.KindAge:
		renderAge(res)
	case jobspec.KindMC:
		renderMC(spec, res)
	case jobspec.KindCorners:
		renderCorners(res.Corners)
	case jobspec.KindCentering:
		renderCentering(res)
	case jobspec.KindSignoff:
		renderSignoff(res)
	}
}

func renderOP(op *jobspec.OPResult) {
	t := report.NewTable("operating point", "node", "V")
	for _, nv := range op.Nodes {
		t.AddRow(nv.Node, report.SI(nv.V, "V"))
	}
	fmt.Println(t)
	if len(op.Devices) > 0 {
		mt := report.NewTable("devices", "name", "ID", "gm", "region")
		for _, d := range op.Devices {
			mt.AddRow(d.Name, report.SI(d.ID, "A"), report.SI(d.Gm, "S"), d.Region)
		}
		fmt.Println(mt)
	}
}

func renderAge(res *jobspec.Result) {
	age := res.Age
	if res.Partial {
		log.Printf("warning: %s — reporting the partial trajectory (%d checkpoints)",
			res.Warning, len(age.Checkpoints))
	}
	headers := append([]string{"age"}, age.Nodes...)
	t := report.NewTable(fmt.Sprintf("aging trajectory (%g years @ %g K)", age.Years, age.TempK), headers...)
	for _, cp := range age.Checkpoints {
		cells := []string{report.Years(cp.Time)}
		if cp.Failed {
			cells = append(cells, "no convergence")
		} else {
			for _, nv := range cp.Nodes {
				cells = append(cells, report.SI(nv.V, "V"))
			}
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
	dt := report.NewTable("device damage at end of life", "device", "ΔVT", "mobility", "BD mode")
	for _, d := range age.Devices {
		dt.AddRow(d.Name,
			report.SI(d.DeltaVT, "V"),
			fmt.Sprintf("%.3f", d.MobilityFactor),
			d.BDMode)
	}
	fmt.Println(dt)
}

func renderMC(spec *jobspec.Spec, res *jobspec.Result) {
	mc := res.MC
	if res.Partial {
		log.Printf("warning: %s — reporting partial results", res.Warning)
	}
	printMCAccounting(mc)
	if len(mc.Values) == 0 {
		// Sharded and resumed campaigns ship mergeable statistics instead
		// of per-trial values; report from those.
		if mc.Stats != nil && mc.Stats.Moments.Count > 0 {
			renderMCStats(spec, mc)
			return
		}
		log.Fatal("mc: no trial produced a value")
	}
	fmt.Printf("V(%s) over %d dies: mean %s, σ %s\n", mc.Node, mc.Completed(),
		report.SI(mathx.Mean(mc.Values), "V"), report.SI(mathx.StdDev(mc.Values), "V"))
	loQ, hiQ := mathx.MinMax(mc.Values)
	h := mathx.NewHistogram(loQ, hiQ+1e-12, 15)
	for _, v := range mc.Values {
		h.Add(v)
	}
	fmt.Print(report.TextHist(h, 40))
	if spec.MC.HasSpec() {
		fmt.Printf("yield for %g <= V(%s) <= %g: %s\n",
			spec.MC.SpecLo(), mc.Node, spec.MC.SpecHi(), mc.Yield)
	}
}

// renderMCStats reports a campaign summarised by mergeable statistics
// (sharded or resumed runs keep no per-trial values): exact moments,
// sketch quantiles in place of the histogram, and the merged yield.
func renderMCStats(spec *jobspec.Spec, mc *jobspec.MCOutcome) {
	st := mc.Stats
	how := "sharded"
	if mc.Resumed > 0 {
		how = fmt.Sprintf("resumed from %d checkpointed chunk(s)", mc.Resumed)
	} else if mc.Shards > 1 {
		how = fmt.Sprintf("scatter-gathered over %d shards", mc.Shards)
	}
	fmt.Printf("V(%s) over %d dies (%s): mean %s, σ %s\n", mc.Node, mc.Completed(), how,
		report.SI(st.Mean(), "V"), report.SI(st.StdDev(), "V"))
	t := report.NewTable("distribution (merged sketch)", "quantile", "V("+mc.Node+")")
	for _, p := range []float64{0.01, 0.10, 0.50, 0.90, 0.99} {
		t.AddRow(fmt.Sprintf("p%02.0f", p*100), report.SI(st.Quantile(p), "V"))
	}
	fmt.Println(t)
	fmt.Fprintln(os.Stderr, "per-trial values not retained; no histogram (quantiles carry the sketch's bounded rank error)")
	if spec.MC != nil && spec.MC.HasSpec() {
		fmt.Printf("yield for %g <= V(%s) <= %g: %s\n",
			spec.MC.SpecLo(), mc.Node, spec.MC.SpecHi(), mc.Yield)
	}
}

// printMCAccounting reports the run's structured failure accounting —
// how many dies measured, failed (by kind), returned NaN or were never
// run — so partial and degraded runs are legible to operators. It writes
// to stderr: the accounting is diagnostics, and stdout may be a pipe
// carrying the measurement results.
func printMCAccounting(mc *jobspec.MCOutcome) {
	ok := len(mc.Values)
	if mc.Stats != nil {
		ok = int(mc.Stats.Moments.Count)
	}
	fmt.Fprintf(os.Stderr, "trials: %d requested, %d completed in %s (%d ok, %d failed, %d NaN, %d cancelled)\n",
		mc.Requested, mc.Completed(), time.Duration(mc.Elapsed).Round(time.Millisecond),
		ok, mc.Failures, mc.NaNs, mc.Cancelled)
	if mc.Failures > 0 {
		for kind, count := range mc.FailuresByKind {
			fmt.Fprintf(os.Stderr, "  %s failures: %d\n", kind, count)
		}
		// Show the first structured error as a debugging sample.
		fmt.Fprintf(os.Stderr, "  first failure: %s\n", mc.FirstFailure)
	}
}

func renderCorners(c *jobspec.CornersResult) {
	judged := c.Lo != nil || c.Hi != nil
	if judged {
		t := report.NewTable("process corners", "corner", "V("+c.Node+")", "margin", "verdict")
		for _, co := range c.Corners {
			margin, verdict := "—", "—"
			if co.Margin != nil {
				margin = report.SI(*co.Margin, "V")
			}
			if co.Pass != nil {
				verdict = "PASS"
				if !*co.Pass {
					verdict = "FAIL"
				}
			}
			t.AddRow(co.Name, report.SI(co.V, "V"), margin, verdict)
		}
		fmt.Println(t)
	} else {
		t := report.NewTable("process corners", "corner", "V("+c.Node+")")
		for _, co := range c.Corners {
			t.AddRow(co.Name, report.SI(co.V, "V"))
		}
		fmt.Println(t)
	}
	fmt.Printf("worst corner: %s (V(%s) = %s)\n", c.Worst, c.Node, report.SI(c.WorstV, "V"))
	if judged {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("corner verdict: %s\n", verdict)
	}
}

// renderCentering reports a design-centering run: the yield trajectory of
// every accepted sizing move, the final device widths, and the headline
// baseline→final yield improvement.
func renderCentering(res *jobspec.Result) {
	c := res.Centering
	if res.Partial {
		log.Printf("warning: %s — reporting the partial trajectory (%d accepted moves)",
			res.Warning, len(c.Trajectory)-1)
	}
	t := report.NewTable(fmt.Sprintf("centering trajectory (%d dies/point)", c.Trials),
		"iter", "move", "yield", "95% CI", "mean V("+c.Node+")", "σ")
	for _, p := range c.Trajectory {
		move := "baseline"
		if p.Device != "" {
			move = fmt.Sprintf("%s ×%.3g", p.Device, p.Scale)
		}
		mean, sigma := "—", "—"
		if p.Mean != nil {
			mean = report.SI(*p.Mean, "V")
		}
		if p.Sigma != nil {
			sigma = report.SI(*p.Sigma, "V")
		}
		t.AddRow(fmt.Sprintf("%d", p.Iteration), move,
			fmt.Sprintf("%.1f%%", 100*p.Yield.Yield),
			fmt.Sprintf("[%.1f%%, %.1f%%]", 100*p.Yield.Lo95, 100*p.Yield.Hi95),
			mean, sigma)
	}
	fmt.Println(t)
	st := report.NewTable("final sizing", "device", "scale", "width")
	for _, d := range c.Sizing {
		st.AddRow(d.Device, fmt.Sprintf("×%.3g", d.Scale), report.SI(d.WidthM, "m"))
	}
	fmt.Println(st)
	how := "stopped at max-iters"
	if c.Converged {
		how = "converged"
	}
	fmt.Printf("yield: %.1f%% → %.1f%% after %d accepted move(s) (%s)\n",
		100*c.Baseline.Yield.Yield, 100*c.Final.Yield.Yield, len(c.Trajectory)-1, how)
}

// renderSignoff prints the composite compliance report's text rendering —
// the same versioned signoff.Report the HTTP API returns as JSON — and
// routes the incompleteness warning to stderr like every other analysis.
func renderSignoff(res *jobspec.Result) {
	if res.Partial {
		log.Printf("warning: %s", res.Warning)
	}
	fmt.Print(res.Signoff.Text())
}
