// Command relsim runs reliability analyses on a SPICE-flavoured netlist.
//
// Usage:
//
//	relsim -netlist ckt.sp -analysis op
//	relsim -netlist ckt.sp -analysis tran -stop 1e-3 -step 1e-6 -record out
//	relsim -netlist ckt.sp -analysis tran -adaptive -ltetol 1e-3 -record out
//	relsim -netlist ckt.sp -analysis sweep -source VIN -from 0 -to 1.1 -points 23 -record out
//	relsim -netlist ckt.sp -analysis ac -acsource VIN -fstart 1e3 -fstop 1e9 -record out
//	relsim -netlist ckt.sp -analysis age -years 10 -temp 400 -record out
//	relsim -netlist ckt.sp -analysis mc -trials 200 -node out -lo 0.4 -hi 0.8
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -timeout 30s -progress
//	relsim -netlist ckt.sp -analysis corners -node out
//
// The age analysis applies NBTI+HCI+TDDB with DC stress extracted from the
// operating point; mc runs Monte-Carlo mismatch on all MOSFETs and reports
// the node-voltage distribution and yield against [-lo, -hi]; corners
// sweeps the five classic global corners (TT/SS/FF/SF/FS).
//
// -timeout bounds the wall clock of the mc and age analyses: on expiry
// the completed portion of the run is reported with explicit cancelled
// counts instead of being discarded.
//
// Observability: -progress streams one instrument snapshot line per second
// to stderr (trial count and latency quantiles, Newton iterations, aging
// checkpoints), and -metrics-addr serves the full instrument registry over
// HTTP while the analysis runs:
//
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -progress
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -metrics-addr :9090 &
//	curl localhost:9090/metrics        # Prometheus text format
//	curl localhost:9090/metrics.json   # JSON snapshot
//	curl localhost:9090/debug/vars     # expvar
//
// Analysis results (tables, CSV, histograms) go to stdout; every banner,
// progress line and accounting diagnostic goes to stderr, so piped output
// stays machine-readable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/variation"
)

const year = 365.25 * 24 * 3600

func main() {
	log.SetFlags(0)
	log.SetPrefix("relsim: ")
	var (
		netFile  = flag.String("netlist", "", "netlist file (required)")
		analysis = flag.String("analysis", "op", "op | tran | sweep | age | mc")
		stop     = flag.Float64("stop", 1e-3, "tran: stop time [s]")
		step     = flag.Float64("step", 1e-6, "tran: time step [s]")
		adaptive = flag.Bool("adaptive", false, "tran: variable step with LTE control")
		ltetol   = flag.Float64("ltetol", 1e-3, "tran: LTE tolerance [V] (adaptive)")
		record   = flag.String("record", "", "comma-separated node list to report")
		source   = flag.String("source", "", "sweep: source element to sweep")
		from     = flag.Float64("from", 0, "sweep: start value")
		to       = flag.Float64("to", 1, "sweep: end value")
		points   = flag.Int("points", 11, "sweep: number of points")
		years    = flag.Float64("years", 10, "age: mission length [years]")
		temp     = flag.Float64("temp", 350, "age: junction temperature [K]")
		acFrom   = flag.Float64("fstart", 1e3, "ac: start frequency [Hz]")
		acTo     = flag.Float64("fstop", 1e9, "ac: stop frequency [Hz]")
		acPoints = flag.Int("fpoints", 31, "ac: number of log-spaced points")
		acSource = flag.String("acsource", "", "ac: source to stimulate (ACMag=1)")
		trials   = flag.Int("trials", 200, "mc: number of Monte-Carlo dies")
		node     = flag.String("node", "", "mc: monitored node")
		lo       = flag.Float64("lo", math.Inf(-1), "mc: spec lower bound")
		hi       = flag.Float64("hi", math.Inf(1), "mc: spec upper bound")
		seed     = flag.Uint64("seed", 1, "mc/age: RNG seed")
		timeout  = flag.Duration("timeout", 0, "mc/age: wall-clock budget; partial results are reported on expiry (0 = none)")
		progress = flag.Bool("progress", false, "print a per-second instrument snapshot line to stderr")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/vars on this address (e.g. :9090)")
	)
	flag.Parse()
	if *netFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Wire the whole-stack instrumentation when anything consumes it; with
	// neither flag set the solver keeps its nil-sink fast path.
	if *progress || *metrics != "" {
		reg := obs.NewRegistry()
		core.EnableMetrics(reg)
		if *metrics != "" {
			go func() {
				log.Printf("serving metrics on http://%s/metrics", *metrics)
				if err := http.ListenAndServe(*metrics, obs.Handler(reg)); err != nil {
					log.Printf("metrics server: %v", err)
				}
			}()
		}
		if *progress {
			pub := obs.NewPublisher(reg, time.Second, &obs.LogSink{
				W: os.Stderr, Prefix: "relsim: ",
				Keys: []string{
					"variation_trial_seconds",
					"circuit_newton_iterations_total",
					"circuit_op_total",
					"aging_checkpoints_total",
				},
			})
			defer pub.Stop()
		}
	}

	text, err := os.ReadFile(*netFile)
	if err != nil {
		log.Fatal(err)
	}
	deck, err := netlist.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	if deck.Title != "" {
		// Stderr, not stdout: piped CSV/tables must stay machine-readable.
		fmt.Fprintf(os.Stderr, "* %s (tech %s, %g K)\n", deck.Title, deck.Tech.Name, deck.TempK)
	}

	nodes := splitList(*record)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch *analysis {
	case "op":
		runOP(deck, nodes)
	case "tran":
		if *adaptive {
			runTranAdaptive(deck, nodes, *stop, *step, *ltetol)
		} else {
			runTran(deck, nodes, *stop, *step)
		}
	case "sweep":
		runSweep(deck, nodes, *source, *from, *to, *points)
	case "ac":
		runAC(deck, nodes, *acSource, *acFrom, *acTo, *acPoints)
	case "age":
		runAge(ctx, deck, nodes, *years, *temp, *seed)
	case "mc":
		runMC(ctx, string(text), deck, *node, *trials, *lo, *hi, *seed)
	case "corners":
		runCorners(deck, *node)
	default:
		log.Fatalf("unknown analysis %q", *analysis)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func runOP(deck *netlist.Deck, nodes []string) {
	sol, err := deck.Circuit.OperatingPoint()
	if err != nil {
		log.Fatal(err)
	}
	if len(nodes) == 0 {
		nodes = deck.Circuit.NodeNames()
	}
	t := report.NewTable("operating point", "node", "V")
	for _, n := range nodes {
		t.AddRow(n, report.SI(sol.Voltage(n), "V"))
	}
	fmt.Println(t)
	if len(deck.MOSFETs) > 0 {
		mt := report.NewTable("devices", "name", "ID", "gm", "region")
		for _, m := range deck.Circuit.MOSFETs() {
			op := m.OP()
			mt.AddRow(m.Name(), report.SI(op.ID, "A"), report.SI(op.Gm, "S"), op.Region)
		}
		fmt.Println(mt)
	}
}

func runTran(deck *netlist.Deck, nodes []string, stop, step float64) {
	wf, err := deck.Circuit.Transient(circuit.TranSpec{
		Stop: stop, Step: step, Integrator: circuit.Trapezoidal, Record: nodes,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(nodes) == 0 {
		nodes = wf.Nodes()
	}
	headers := append([]string{"t [s]"}, nodes...)
	rows := make([][]float64, len(wf.Times))
	for i, tm := range wf.Times {
		row := []float64{tm}
		for _, n := range nodes {
			row = append(row, wf.Node(n)[i])
		}
		rows[i] = row
	}
	fmt.Print(report.CSV(headers, rows))
}

func runTranAdaptive(deck *netlist.Deck, nodes []string, stop, minStep, ltetol float64) {
	wf, err := deck.Circuit.TransientAdaptive(circuit.AdaptiveSpec{
		Stop: stop, MinStep: minStep, MaxStep: stop / 20, LTETol: ltetol,
		Integrator: circuit.Trapezoidal, Record: nodes,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(nodes) == 0 {
		nodes = wf.Nodes()
	}
	headers := append([]string{"t [s]"}, nodes...)
	rows := make([][]float64, len(wf.Times))
	for i, tm := range wf.Times {
		row := []float64{tm}
		for _, n := range nodes {
			row = append(row, wf.Node(n)[i])
		}
		rows[i] = row
	}
	fmt.Print(report.CSV(headers, rows))
}

func runSweep(deck *netlist.Deck, nodes []string, source string, from, to float64, points int) {
	if source == "" {
		log.Fatal("sweep needs -source")
	}
	if points < 2 {
		log.Fatal("sweep needs -points >= 2")
	}
	values := mathx.Linspace(from, to, points)
	sols, err := deck.Circuit.DCSweep(source, values)
	if err != nil {
		log.Fatal(err)
	}
	if len(nodes) == 0 {
		nodes = deck.Circuit.NodeNames()
	}
	headers := append([]string{source}, nodes...)
	rows := make([][]float64, len(values))
	for i := range values {
		row := []float64{values[i]}
		for _, n := range nodes {
			row = append(row, sols[i].Voltage(n))
		}
		rows[i] = row
	}
	fmt.Print(report.CSV(headers, rows))
}

func runAC(deck *netlist.Deck, nodes []string, source string, from, to float64, points int) {
	if source == "" {
		log.Fatal("ac needs -acsource")
	}
	src, err := deck.Circuit.VSourceByName(source)
	if err != nil {
		log.Fatal(err)
	}
	src.ACMag = 1
	if len(nodes) == 0 {
		nodes = deck.Circuit.NodeNames()
	}
	if points < 2 || from <= 0 || to <= from {
		log.Fatal("ac needs 0 < fstart < fstop and fpoints >= 2")
	}
	pts, err := deck.Circuit.AC(mathx.Logspace(from, to, points))
	if err != nil {
		log.Fatal(err)
	}
	headers := []string{"f [Hz]"}
	for _, n := range nodes {
		headers = append(headers, n+" [dB]", n+" [deg]")
	}
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		row := []float64{p.Freq}
		for _, n := range nodes {
			row = append(row, p.MagDB(n), p.PhaseDeg(n))
		}
		rows[i] = row
	}
	fmt.Print(report.CSV(headers, rows))
}

func runAge(ctx context.Context, deck *netlist.Deck, nodes []string, years, temp float64, seed uint64) {
	if len(nodes) == 0 {
		nodes = deck.Circuit.NodeNames()
	}
	ager := aging.NewCircuitAger(deck.Circuit, aging.DefaultModels(), temp, seed)
	traj, err := ager.AgeToCtx(ctx, aging.LogCheckpoints(3600, years*year, 10))
	if err != nil {
		if len(traj) == 0 || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		log.Printf("warning: %v — reporting the partial trajectory (%d checkpoints)", err, len(traj))
	}
	headers := append([]string{"age"}, nodes...)
	t := report.NewTable(fmt.Sprintf("aging trajectory (%g years @ %g K)", years, temp), headers...)
	for _, cp := range traj {
		cells := []string{report.Years(cp.Time)}
		if cp.Failed {
			cells = append(cells, "no convergence")
		} else {
			for _, n := range nodes {
				cells = append(cells, report.SI(cp.Solution.Voltage(n), "V"))
			}
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
	dt := report.NewTable("device damage at end of life", "device", "ΔVT", "mobility", "BD mode")
	for _, name := range ager.SortedAgerNames() {
		m := deck.MOSFETs[name]
		dt.AddRow(name,
			report.SI(m.Dev.Damage.DeltaVT, "V"),
			fmt.Sprintf("%.3f", m.Dev.Damage.MobilityFactor),
			ager.Ager(name).BDMode().String())
	}
	fmt.Println(dt)
}

func runCorners(deck *netlist.Deck, node string) {
	if node == "" {
		log.Fatal("corners needs -node")
	}
	// 3σ global corner levels: a representative 30 mV / 8 % spread.
	corners := variation.StandardCorners(0.03, 0.08)
	vals, err := variation.CornerSweep(deck.Circuit, corners, func(c *circuit.Circuit) (float64, error) {
		sol, err := c.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(node), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("process corners", "corner", "V("+node+")")
	for _, co := range corners {
		t.AddRow(co.Name, report.SI(vals[co.Name], "V"))
	}
	fmt.Println(t)
}

func runMC(ctx context.Context, text string, deck *netlist.Deck, node string, trials int, lo, hi float64, seed uint64) {
	if node == "" {
		log.Fatal("mc needs -node")
	}
	// Trials run in parallel, so each die parses its own circuit instead
	// of mutating the shared deck; the nominal solution warm-starts every
	// trial's first solve. Live progress comes from the obs instrumentation
	// (-progress / -metrics-addr), not from ad-hoc counters here.
	var guess []float64
	if sol, err := deck.Circuit.OperatingPoint(); err == nil {
		guess = sol.X
	}
	res, err := variation.MonteCarloCtx(ctx, trials, seed, func(rng *mathx.RNG, _ int) (float64, error) {
		die, err := netlist.Parse(text)
		if err != nil {
			return 0, err
		}
		if guess != nil {
			_ = die.Circuit.SetInitialGuess(guess)
		}
		variation.ApplyRandomMismatch(die.Circuit, die.Tech, variation.NominalCorner(), rng)
		sol, err := die.Circuit.OperatingPoint()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(node), nil
	})
	if err != nil {
		if !errors.Is(err, variation.ErrCancelled) {
			log.Fatal(err)
		}
		log.Printf("warning: %v — reporting partial results", err)
	}
	printMCAccounting(res)
	if len(res.Values) == 0 {
		log.Fatal("mc: no trial produced a value")
	}
	fmt.Printf("V(%s) over %d dies: mean %s, σ %s\n", node, res.Completed(),
		report.SI(res.Mean(), "V"), report.SI(res.StdDev(), "V"))
	loQ, hiQ := mathx.MinMax(res.Values)
	h := mathx.NewHistogram(loQ, hiQ+1e-12, 15)
	for _, v := range res.Values {
		h.Add(v)
	}
	fmt.Print(report.TextHist(h, 40))
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		y := variation.EstimateYield(res.Values, variation.Spec{Name: node, Lo: lo, Hi: hi})
		fmt.Printf("yield for %g <= V(%s) <= %g: %s\n", lo, node, hi, y)
	}
}

// printMCAccounting reports the run's structured failure accounting —
// how many dies measured, failed (by kind), returned NaN or were never
// run — so partial and degraded runs are legible to operators. It writes
// to stderr: the accounting is diagnostics, and stdout may be a pipe
// carrying the measurement results.
func printMCAccounting(res *variation.MCResult) {
	fmt.Fprintf(os.Stderr, "trials: %d requested, %d completed in %s (%d ok, %d failed, %d NaN, %d cancelled)\n",
		res.N, res.Completed(), res.Elapsed.Round(time.Millisecond),
		len(res.Values), res.Failures, res.NaNs, res.Cancelled)
	if res.Failures > 0 {
		for kind, count := range res.ErrorsByKind() {
			fmt.Fprintf(os.Stderr, "  %s failures: %d\n", kind, count)
		}
		// Show the first structured error as a debugging sample.
		fmt.Fprintf(os.Stderr, "  first failure: %v\n", res.Errors[0])
	}
}
