// Command relsim runs reliability analyses on a SPICE-flavoured netlist —
// one-shot from flags, or as a long-running job server.
//
// Usage:
//
//	relsim -netlist ckt.sp -analysis op
//	relsim -netlist ckt.sp -analysis tran -stop 1e-3 -step 1e-6 -record out
//	relsim -netlist ckt.sp -analysis tran -adaptive -ltetol 1e-3 -record out
//	relsim -netlist ckt.sp -analysis sweep -source VIN -from 0 -to 1.1 -points 23 -record out
//	relsim -netlist ckt.sp -analysis ac -acsource VIN -fstart 1e3 -fstop 1e9 -record out
//	relsim -netlist ckt.sp -analysis age -years 10 -temp 400 -record out
//	relsim -netlist ckt.sp -analysis mc -trials 200 -node out -lo 0.4 -hi 0.8
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -timeout 30s -progress
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -shards 8
//	relsim -netlist ckt.sp -analysis corners -node out -lo 0.4 -hi 0.8
//	relsim -netlist ckt.sp -analysis centering -node out -lo 0.4 -hi 0.8 -trials 96
//	relsim -netlist ckt.sp -analysis signoff -node out -lo 0.4 -hi 0.8 -years 10 -target-fit 1000
//	relsim -serve :8080
//
// Every flag set parses into one versioned internal/jobspec.Spec, and
// both modes execute it through the same jobspec.Execute dispatch — a
// POSTed server job and a flag-driven run are the identical struct.
//
// The age analysis applies NBTI+HCI+TDDB with DC stress extracted from the
// operating point; mc runs Monte-Carlo mismatch on all MOSFETs and reports
// the node-voltage distribution and yield against [-lo, -hi]; corners
// sweeps the five classic global corners (TT/SS/FF/SF/FS) and, when -lo or
// -hi is given, judges each corner against the spec window and names the
// worst-margin corner.
//
// centering runs greedy design centering: it resizes MOSFET widths
// (-devices restricts the set, -size-step is one move's width factor,
// -max-scale the cumulative budget) to maximise Monte-Carlo yield against
// the [-lo, -hi] window, reporting the yield trajectory and final sizing.
//
// signoff chains the whole reliability flow into one verdict: the corner
// sweep picks the worst corner, a Monte-Carlo campaign at that corner
// measures parametric yield, the aging trajectory and an EM/TDDB wear-out
// roll-up bound the mission (-years, -temp), and the composite report —
// yield %, σ-margin, FIT rate vs -target-fit, MTBF, failure Pareto —
// prints with a PASS/FAIL verdict (see docs/REPORT_SCHEMA.md).
//
// -timeout bounds the wall clock of the mc and age analyses: on expiry
// the completed portion of the run is reported with explicit cancelled
// counts instead of being discarded.
//
// Server mode: -serve :8080 starts the internal/serve job service —
// POST /v1/jobs submits a spec, GET /v1/jobs/{id} polls it,
// GET /v1/jobs/{id}/events streams NDJSON progress, DELETE cancels, and
// the same listener serves /metrics, /metrics.json, /debug/vars and
// /healthz, so no separate -metrics-addr is needed. -queue bounds the
// job queue (excess submissions get 503 + Retry-After), -workers sizes
// the pool, -timeout becomes the default per-job budget, and SIGINT/
// SIGTERM trigger a graceful drain bounded by -drain in which running
// jobs persist partial results:
//
//	relsim -serve :8080 -queue 64 -workers 8 -timeout 5m -drain 30s
//	curl -s localhost:8080/v1/jobs -d '{"analysis":"mc","netlist":"...","mc":{"trials":1000,"node":"out"}}'
//
// Durability: -data-dir journals job lifecycles and snapshots terminal
// results, so a restarted server serves previously completed results
// without recomputation and re-runs jobs that were still queued. Running
// Monte-Carlo campaigns are checkpointed chunk by chunk: after a crash
// the restarted server resumes them from the last journaled checkpoint,
// re-running at most the chunk that was in flight, instead of failing
// them; interrupted jobs of other kinds still fail with a structured
// interrupted error. -data-dir also enables the spec-keyed result cache:
// resubmitting a byte-equivalent spec (after defaulting) returns a
// completed job immediately; a spec can opt out with "no_cache": true.
// -keep-jobs / -keep-age bound the retained terminal jobs in memory and
// on disk (the journal is compacted as evictions accumulate; a resumable
// campaign's checkpoints are never evicted or compacted away):
//
//	relsim -serve :8080 -data-dir /var/lib/relsim -keep-jobs 512 -keep-age 24h
//
// Sharding: a spec with "mc": {"shards": k} splits its campaign into k
// chunk-aligned trial-range shards, scatter-gathered into one result
// with bit-identical mean/σ/yield (quantiles carry a small documented
// sketch error). With -peers the shards are dispatched to other relsim
// servers over the same /v1/jobs API; shard progress streams on the
// events endpoint as NDJSON {"stage":"shard"} samples, and a dead peer
// falls back to local execution:
//
//	relsim -serve :8080 -peers http://host2:8080,http://host3:8080
//
// Fleet mode: -fleet fleet.json federates several relsim servers into
// one service. The config names every node (id, base URL, data dir) and
// a shared fleet key; each node prefixes its job IDs with its own id,
// forwards GET/DELETE /v1/jobs/{id} and the events stream to the owning
// node, places campaign shards on the healthiest least-loaded node
// (dead peers are quarantined with exponential backoff and probed back
// in), enforces tenant max_running quotas fleet-wide, and — when a peer
// stays dead past the takeover threshold and its data_dir is reachable —
// adopts that peer's interrupted campaigns by replaying its journal and
// resuming from the last merged chunk checkpoint:
//
//	relsim -serve :8080 -data-dir /srv/relsim/a -tenants keys.json -fleet fleet.json
//
// Observability: -progress streams one instrument snapshot line per second
// to stderr (trial count and latency quantiles, Newton iterations, aging
// checkpoints), and -metrics-addr serves the full instrument registry over
// HTTP while the analysis runs:
//
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -progress
//	relsim -netlist ckt.sp -analysis mc -trials 100000 -node out -metrics-addr :9090 &
//	curl localhost:9090/metrics        # Prometheus text format
//	curl localhost:9090/metrics.json   # JSON snapshot
//	curl localhost:9090/debug/vars     # expvar
//
// Analysis results (tables, CSV, histograms) go to stdout; every banner,
// progress line and accounting diagnostic goes to stderr, so piped output
// stays machine-readable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobspec"
	"repro/internal/netlist"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("relsim: ")
	var (
		netFile  = flag.String("netlist", "", "netlist file (required in one-shot mode)")
		analysis = flag.String("analysis", "op", "op | tran | sweep | ac | age | mc | corners | centering | signoff")
		stop     = flag.Float64("stop", 1e-3, "tran: stop time [s]")
		step     = flag.Float64("step", 1e-6, "tran: time step [s]")
		adaptive = flag.Bool("adaptive", false, "tran: variable step with LTE control")
		ltetol   = flag.Float64("ltetol", 1e-3, "tran: LTE tolerance [V] (adaptive)")
		record   = flag.String("record", "", "comma-separated node list to report")
		source   = flag.String("source", "", "sweep: source element to sweep")
		from     = flag.Float64("from", 0, "sweep: start value")
		to       = flag.Float64("to", 1, "sweep: end value")
		points   = flag.Int("points", 11, "sweep: number of points")
		years    = flag.Float64("years", 10, "age/signoff: mission length [years]")
		temp     = flag.Float64("temp", 350, "age/signoff: junction temperature [K]")
		acFrom   = flag.Float64("fstart", 1e3, "ac: start frequency [Hz]")
		acTo     = flag.Float64("fstop", 1e9, "ac: stop frequency [Hz]")
		acPoints = flag.Int("fpoints", 31, "ac: number of log-spaced points")
		acSource = flag.String("acsource", "", "ac: source to stimulate (ACMag=1)")
		trials   = flag.Int("trials", 200, "mc/centering/signoff: number of Monte-Carlo dies")
		mcBatch  = flag.Int("batch", 0, "mc: trials evaluated per reused deck (0 = default 32, 1 = no reuse; never changes results)")
		shards   = flag.Int("shards", 0, "mc: split the campaign into this many chunk-aligned trial-range shards (0/1 = unsharded; mean/σ/yield stay bit-identical)")
		node     = flag.String("node", "", "mc/corners/centering/signoff: monitored node")
		lo       = flag.Float64("lo", math.Inf(-1), "mc/corners/centering/signoff: spec lower bound")
		hi       = flag.Float64("hi", math.Inf(1), "mc/corners/centering/signoff: spec upper bound")
		sigmaVT  = flag.Float64("sigma-vt", 0.03, "corners/signoff: 3σ corner VT shift [V]")
		sigmaBe  = flag.Float64("sigma-beta", 0.08, "corners/signoff: 3σ corner β shift (fractional)")
		devices  = flag.String("devices", "", "centering: comma-separated MOSFETs to size; join matched pairs with '+' (M1+M2). default all, individually")
		maxIters = flag.Int("max-iters", 6, "centering: max accepted sizing moves")
		sizeStep = flag.Float64("size-step", 1.25, "centering: width scale factor of one move")
		maxScale = flag.Float64("max-scale", 4, "centering: cumulative width-scale budget per device")
		tgtFIT   = flag.Float64("target-fit", 1000, "signoff: failure-rate budget [failures/1e9 h]")
		seed     = flag.Uint64("seed", 1, "mc/age: RNG seed")
		timeout  = flag.Duration("timeout", 0, "mc/age: wall-clock budget; partial results are reported on expiry (serve: default per-job budget; 0 = none)")
		progress = flag.Bool("progress", false, "print a per-second instrument snapshot line to stderr")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/vars on this address (e.g. :9090)")

		serveAddr = flag.String("serve", "", "run as a job server on this address (e.g. :8080) instead of a one-shot analysis")
		queue     = flag.Int("queue", 64, "serve: bounded job-queue depth (backpressure beyond it)")
		workers   = flag.Int("workers", 0, "serve: worker pool size (0 = GOMAXPROCS)")
		drain     = flag.Duration("drain", 30*time.Second, "serve: graceful-shutdown drain budget for running jobs")
		dataDir   = flag.String("data-dir", "", "serve: journal jobs and results here; restart recovers them and enables the spec-keyed result cache")
		keepJobs  = flag.Int("keep-jobs", 512, "serve: max retained terminal jobs (oldest evicted first; negative = unbounded)")
		keepAge   = flag.Duration("keep-age", 0, "serve: evict terminal jobs older than this (0 = no age bound)")
		peers     = flag.String("peers", "", "serve: comma-separated peer server URLs to dispatch campaign shards to (mc.shards > 1); a dead peer falls back to local execution")
		tenants   = flag.String("tenants", "", "serve: tenant keyfile ({\"tenants\":[{\"id\",\"key\",\"weight\",...}]}); enables API-key auth, per-tenant quotas and weighted fair-share scheduling")
		fleetFile = flag.String("fleet", "", "serve: fleet config ({\"self\",\"key\",\"nodes\":[{\"id\",\"url\",\"data_dir\"}]}); federates this server with the listed nodes (overrides -peers)")
	)
	flag.Parse()

	if *serveAddr != "" {
		runServe(*serveAddr, *queue, *workers, *timeout, *drain, *metrics, *progress, *dataDir, *keepJobs, *keepAge, splitList(*peers), *tenants, *fleetFile)
		return
	}
	if *netFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Unknown -analysis is a usage error: usage + exit 2, before any work.
	spec := &jobspec.Spec{Analysis: jobspec.Kind(*analysis)}
	if err := spec.Validate(); err != nil {
		var unknown *jobspec.ErrUnknownAnalysis
		if errors.As(err, &unknown) {
			fmt.Fprintf(os.Stderr, "relsim: %v\n", err)
			flag.Usage()
			os.Exit(2)
		}
	}

	text, err := os.ReadFile(*netFile)
	if err != nil {
		log.Fatal(err)
	}
	spec = &jobspec.Spec{
		Version:  jobspec.SpecVersion,
		Analysis: jobspec.Kind(*analysis),
		Netlist:  string(text),
		Record:   splitList(*record),
		Seed:     *seed,
		Timeout:  jobspec.Duration(*timeout),
	}
	switch spec.Analysis {
	case jobspec.KindTran:
		spec.Tran = &jobspec.TranParams{Stop: *stop, Step: *step, Adaptive: *adaptive, LTETol: *ltetol}
	case jobspec.KindSweep:
		spec.Sweep = &jobspec.SweepParams{Source: *source, From: *from, To: *to, Points: *points}
	case jobspec.KindAC:
		spec.AC = &jobspec.ACParams{Source: *acSource, FStart: *acFrom, FStop: *acTo, Points: *acPoints}
	case jobspec.KindAge:
		spec.Age = &jobspec.AgeParams{Years: *years, TempK: *temp, Checkpoints: 10}
	case jobspec.KindMC:
		spec.MC = &jobspec.MCParams{Trials: *trials, Node: *node, Batch: *mcBatch, Shards: *shards,
			Lo: finitePtr(*lo), Hi: finitePtr(*hi)}
	case jobspec.KindCorners:
		spec.Corners = &jobspec.CornersParams{Node: *node, SigmaVT: *sigmaVT, SigmaBeta: *sigmaBe,
			Lo: finitePtr(*lo), Hi: finitePtr(*hi)}
	case jobspec.KindCentering:
		spec.Centering = &jobspec.CenteringParams{Node: *node, Lo: finitePtr(*lo), Hi: finitePtr(*hi),
			Trials: *trials, MaxIters: *maxIters, Step: *sizeStep, MaxScale: *maxScale,
			Devices: splitList(*devices)}
	case jobspec.KindSignoff:
		spec.Signoff = &jobspec.SignoffParams{Node: *node, Lo: finitePtr(*lo), Hi: finitePtr(*hi),
			Trials: *trials, SigmaVT: *sigmaVT, SigmaBeta: *sigmaBe,
			Years: *years, TempK: *temp, TargetFIT: *tgtFIT}
	}
	// No ApplyDefaults here: the flag defaults above already encode every
	// default, and defaulting would silently rewrite explicit zeros
	// (-seed 0, -trials 0) the way a sparse JSON document wants but a
	// command line does not.
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	// Wire the whole-stack instrumentation when anything consumes it; with
	// neither flag set the solver keeps its nil-sink fast path.
	if *progress || *metrics != "" {
		reg := obs.NewRegistry()
		core.EnableMetrics(reg)
		if *metrics != "" {
			// Listen synchronously so a bad address or busy port fails the
			// run at startup instead of being logged mid-analysis.
			ln, err := net.Listen("tcp", *metrics)
			if err != nil {
				log.Fatalf("metrics server: %v", err)
			}
			log.Printf("serving metrics on http://%s/metrics", ln.Addr())
			go func() {
				if err := http.Serve(ln, obs.Handler(reg)); err != nil {
					log.Printf("metrics server: %v", err)
				}
			}()
		}
		if *progress {
			pub := obs.NewPublisher(reg, time.Second, &obs.LogSink{
				W: os.Stderr, Prefix: "relsim: ",
				Keys: []string{
					"variation_trial_seconds",
					"circuit_newton_iterations_total",
					"circuit_op_total",
					"aging_checkpoints_total",
				},
			})
			defer pub.Stop()
		}
	}

	// Parse once up front for the banner (Execute re-parses internally);
	// deck errors surface here, before any analysis starts.
	deck, err := netlist.Parse(string(text))
	if err != nil {
		log.Fatal(err)
	}
	if deck.Title != "" {
		// Stderr, not stdout: piped CSV/tables must stay machine-readable.
		fmt.Fprintf(os.Stderr, "* %s (tech %s, %g K)\n", deck.Title, deck.Tech.Name, deck.TempK)
	}

	res, err := jobspec.Execute(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	render(spec, res)
}

// finitePtr converts a ±Inf-defaulted bound flag into the jobspec's
// optional-pointer form: nil when the flag was left at its infinite
// default, the value otherwise.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
