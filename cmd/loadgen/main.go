// Command loadgen is an open-loop load driver for the relsim job API.
// It offers Monte-Carlo jobs to a server at multiples of the server's
// measured capacity, split across two tenants with 3:1 fair-share
// weights, and reports per-stage acceptance, rejection (429 vs 503),
// completion-latency percentiles and the per-tenant completed share —
// the curves BENCH_9.json records.
//
// With -self (the default when -addr is empty) it starts an in-process
// multi-tenant server backed by the real simulation engine, so the
// numbers include the full HTTP + scheduling + solver path:
//
//	go run ./cmd/loadgen -self -stages 1,4,16 -out BENCH_9.json
//
// Against an external server, point -addr at it and supply the two
// tenant keys the driver should use:
//
//	go run ./cmd/loadgen -addr 127.0.0.1:8080 -key-a k-acme -key-b k-beta
//
// Against a relsim fleet, -addrs takes a comma-separated node list and
// the driver round-robins every request — submits and event streams
// alike — across the nodes, relying on fleet forwarding to resolve a
// job submitted on one node from any other:
//
//	go run ./cmd/loadgen -addrs 127.0.0.1:8080,127.0.0.1:8081 -key-a k-acme -key-b k-beta
//
// The driver is open-loop: arrivals are scheduled by a clock, not by
// responses, so saturation shows up as queueing latency and structured
// 429/503 rejections rather than as a slowed-down driver.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

const loadDeck = `
* cmos inverter at 90nm
.tech 90nm
.temp 300
VDD vdd 0 DC 1.1
VIN in 0 DC 0.55
MN out in 0 0 NMOS W=1u L=90n
MP out in vdd vdd PMOS W=2u L=90n
.end
`

// tenantPlan is one synthetic tenant the driver submits as.
type tenantPlan struct {
	id     string
	key    string
	weight float64
}

type stats struct {
	mu          sync.Mutex
	offered     int
	accepted    int
	rejected429 int
	rejected503 int
	errored     int
	completed   int
	// completedInWin counts completions inside the submission window —
	// the steady-state sample the fair-share ratio is measured on. After
	// the window closes both tenants' full backlogs drain to completion
	// regardless of weight, which would dilute the ratio toward 1:1.
	completedInWin int
	// droppedClient counts arrivals the driver shed because its own
	// bounded submitter pool was saturated — the driver refusing to queue
	// unboundedly rather than a server response.
	droppedClient int
	lats          []time.Duration
}

func (s *stats) lock(f func()) { s.mu.Lock(); f(); s.mu.Unlock() }

type latencyJSON struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

type tenantJSON struct {
	Weight         float64     `json:"weight"`
	Offered        int         `json:"offered"`
	Accepted       int         `json:"accepted"`
	Rejected429    int         `json:"rejected_429"`
	Rejected503    int         `json:"rejected_503"`
	Completed      int         `json:"completed"`
	CompletedInWin int         `json:"completed_in_window"`
	CompletedShare float64     `json:"completed_share_in_window"`
	DroppedClient  int         `json:"dropped_client,omitempty"`
	LatencyMS      latencyJSON `json:"latency_ms"`
}

type stageJSON struct {
	Multiplier    float64               `json:"multiplier"`
	OfferedPerS   float64               `json:"offered_jobs_per_s"`
	DurationS     float64               `json:"duration_s"`
	Offered       int                   `json:"offered"`
	Accepted      int                   `json:"accepted"`
	Rejected429   int                   `json:"rejected_429"`
	Rejected503   int                   `json:"rejected_503"`
	Errored       int                   `json:"errored,omitempty"`
	DroppedClient int                   `json:"dropped_client,omitempty"`
	Completed     int                   `json:"completed"`
	RejectionRate float64               `json:"rejection_rate"`
	LatencyMS     latencyJSON           `json:"latency_ms"`
	PerTenant     map[string]tenantJSON `json:"per_tenant"`
}

type reportJSON struct {
	Change           string      `json:"change"`
	Date             string      `json:"date"`
	GOOS             string      `json:"goos"`
	GOARCH           string      `json:"goarch"`
	Command          string      `json:"command"`
	Note             string      `json:"note"`
	Workers          int         `json:"workers"`
	QueueDepth       int         `json:"queue_depth"`
	TenantMaxQueued  int         `json:"tenant_max_queued"`
	TrialsPerJob     int         `json:"trials_per_job"`
	CapacityJobsPerS float64     `json:"capacity_jobs_per_s"`
	Stages           []stageJSON `json:"stages"`
	FairShare        struct {
		ConfiguredShareA float64 `json:"configured_share_acme"`
		MeasuredShareA   float64 `json:"measured_share_acme_at_max_load"`
		WithinTenPct     bool    `json:"within_ten_pct"`
	} `json:"fair_share"`
}

var seedCounter atomic.Int64

// targetPool rotates requests across the configured server addresses —
// one address in single-server mode, every node of a fleet with -addrs.
// Submits and the event streams that follow them deliberately land on
// independent rotations, so a fleet run exercises cross-node forwarding
// on roughly (n-1)/n of the follow-ups.
type targetPool struct {
	addrs []string
	n     atomic.Int64
}

func (p *targetPool) next() string {
	return p.addrs[int(p.n.Add(1)-1)%len(p.addrs)]
}

func main() {
	var (
		addr     = flag.String("addr", "", "host:port of a running relsim server (empty: start one in-process)")
		addrs    = flag.String("addrs", "", "comma-separated host:port list of fleet nodes; requests round-robin across them (overrides -addr)")
		self     = flag.Bool("self", false, "force the in-process server even if -addr is set")
		keyA     = flag.String("key-a", "k-acme", "API key of the weight-3 tenant")
		keyB     = flag.String("key-b", "k-beta", "API key of the weight-1 tenant")
		workers  = flag.Int("workers", 2, "in-process server worker pool size")
		queue    = flag.Int("queue", 24, "in-process server global queue depth")
		maxQ     = flag.Int("max-queued", 12, "in-process server per-tenant max_queued quota")
		trials   = flag.Int("trials", 60000, "Monte-Carlo trials per job (sets job service time)")
		stagesF  = flag.String("stages", "1,4,16", "comma-separated offered-load multiples of capacity")
		stageDur = flag.Duration("stage-duration", 12*time.Second, "submission window per stage")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	seedCounter.Store(time.Now().UnixNano() & 0x7fffffff)

	tenants := []tenantPlan{
		{id: "acme", key: *keyA, weight: 3},
		{id: "beta", key: *keyB, weight: 1},
	}
	var mults []float64
	for _, f := range strings.Split(*stagesF, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || m <= 0 {
			log.Fatalf("loadgen: bad -stages entry %q", f)
		}
		mults = append(mults, m)
	}

	pool := &targetPool{}
	if *addrs != "" && !*self {
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				pool.addrs = append(pool.addrs, a)
			}
		}
		if len(pool.addrs) == 0 {
			log.Fatalf("loadgen: -addrs lists no addresses")
		}
		log.Printf("fleet target: round-robin across %d node(s)", len(pool.addrs))
	} else if *addr != "" && !*self {
		pool.addrs = []string{*addr}
	} else {
		pool.addrs = []string{startSelfServer(*workers, *queue, *maxQ, tenants)}
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	// The event-stream client has no overall timeout: a stream stays open
	// for the job's whole queue+service time (per-call deadlines come from
	// a request context instead).
	streamer := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	capacity := calibrate(client, streamer, pool, tenants[0], *trials, *workers)
	log.Printf("calibrated capacity: %.1f jobs/s (%d workers, %d trials/job)", capacity, *workers, *trials)

	rep := reportJSON{
		Change: "PR 9: multi-tenant job API — per-tenant keys and quotas, weighted fair-share scheduler with priority classes, batch submission with cache dedup, structured 429/503 error envelopes",
		Date:   time.Now().Format("2006-01-02"),
		GOOS:   runtime.GOOS, GOARCH: runtime.GOARCH,
		Command: "go run ./cmd/loadgen -self -stages " + *stagesF,
		Note: "open-loop load at multiples of measured capacity, split evenly across tenants acme (weight 3) and beta (weight 1). " +
			"Latency is submit-to-terminal for accepted jobs. Per-tenant max_queued is the binding admission limit (the global " +
			"queue equals the sum of the quotas), so under saturation each tenant keeps its own backlog full and the completed " +
			"share measures the weighted fair-share scheduler alone: it must converge to the configured 3:1 while overload is " +
			"shed as structured 429 (tenant quota) and 503 (global capacity) rejections. At 1x there is no sustained backlog, " +
			"so the scheduler is work-conserving and the share tracks the 50/50 offered split instead.",
		Workers: *workers, QueueDepth: *queue, TenantMaxQueued: *maxQ,
		TrialsPerJob: *trials, CapacityJobsPerS: round2(capacity),
	}
	for _, m := range mults {
		log.Printf("stage %gx: offering %.1f jobs/s for %s", m, m*capacity, *stageDur)
		st := runStage(client, streamer, pool, tenants, m, capacity, *stageDur, *trials)
		rep.Stages = append(rep.Stages, st)
		log.Printf("stage %gx: offered %d accepted %d 429 %d 503 %d completed %d p99 %.0fms",
			m, st.Offered, st.Accepted, st.Rejected429, st.Rejected503, st.Completed, st.LatencyMS.P99)
	}

	last := rep.Stages[len(rep.Stages)-1]
	rep.FairShare.ConfiguredShareA = 0.75
	if tot := last.PerTenant["acme"].CompletedInWin + last.PerTenant["beta"].CompletedInWin; tot > 0 {
		rep.FairShare.MeasuredShareA = round3(float64(last.PerTenant["acme"].CompletedInWin) / float64(tot))
	}
	rep.FairShare.WithinTenPct =
		rep.FairShare.MeasuredShareA > 0.75*0.9 && rep.FairShare.MeasuredShareA < 0.75*1.1

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	log.Printf("wrote %s", *out)
}

// startSelfServer brings up an in-process multi-tenant server with the
// real execution engine on a loopback port and returns its address.
func startSelfServer(workers, queueDepth, maxQueued int, tenants []tenantPlan) string {
	cfgs := make([]serve.TenantConfig, len(tenants))
	for i, tp := range tenants {
		cfgs[i] = serve.TenantConfig{
			ID: tp.id, Key: tp.key, Weight: tp.weight, MaxQueued: maxQueued,
		}
	}
	s := serve.NewServer(serve.Config{
		QueueDepth: queueDepth,
		Workers:    workers,
		Registry:   obs.NewRegistry(),
		Tenants:    cfgs,
		// Lifecycle events only: the driver follows every accepted job via
		// one /events stream, and per-trial progress samples would turn
		// those streams into the dominant load on a small host.
		ProgressEvery: 1 << 30,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	go func() {
		if err := http.Serve(ln, s); err != nil {
			log.Printf("loadgen: server: %v", err)
		}
	}()
	log.Printf("in-process server on %s (%d workers, queue %d, per-tenant max_queued %d)",
		ln.Addr(), workers, queueDepth, maxQueued)
	return ln.Addr().String()
}

func specBody(trials int) []byte {
	seed := seedCounter.Add(1)
	b, _ := json.Marshal(map[string]any{
		"analysis": "mc",
		"netlist":  loadDeck,
		"seed":     seed,
		"mc":       map[string]any{"trials": trials, "node": "out"},
	})
	return b
}

// calibrate measures the server's real concurrent throughput through
// the full HTTP path: a burst of jobs is submitted together and drained
// by the worker pool, so the figure includes whatever parallel speedup
// the host actually delivers (on a single-core host two workers do NOT
// double throughput — a sequential measurement scaled by the worker
// count would set every stage's offered load far above its multiplier).
func calibrate(c, sc *http.Client, pool *targetPool, tp tenantPlan, trials, workers int) float64 {
	// One warmup job to populate solver and HTTP connection caches.
	if id, status, _ := submitJob(c, pool.next(), tp.key, trials); status == 202 {
		waitTerminal(sc, pool.next(), tp.key, id, 60*time.Second)
	}
	const burst = 10 // within the tenant's max_queued quota
	ids := make([]string, 0, burst)
	start := time.Now()
	for i := 0; i < burst; i++ {
		id, status, _ := submitJob(c, pool.next(), tp.key, trials)
		if status != 202 {
			log.Fatalf("loadgen: calibration submit got HTTP %d", status)
		}
		ids = append(ids, id)
	}
	done := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if waitTerminal(sc, pool.next(), tp.key, id, 120*time.Second) {
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	if done == 0 {
		log.Fatalf("loadgen: calibration jobs never finished")
	}
	return float64(done) / time.Since(start).Seconds()
}

// runStage offers mult×capacity jobs/s for dur, half to each tenant,
// then waits for every accepted job to reach a terminal state.
func runStage(c, sc *http.Client, pool *targetPool, tenants []tenantPlan, mult, capacity float64, dur time.Duration, trials int) stageJSON {
	perTenantRate := mult * capacity / float64(len(tenants))
	interval := time.Duration(float64(time.Second) / perTenantRate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	all := map[string]*stats{}
	windowEnd := time.Now().Add(dur)
	var wg sync.WaitGroup
	for _, tp := range tenants {
		st := &stats{}
		all[tp.id] = st
		wg.Add(1)
		go func(tp tenantPlan, st *stats) {
			defer wg.Done()
			// A bounded submitter pool keeps the driver honest on a small
			// host: without it, a burst of slow responses lets in-flight
			// submissions pile up without bound, and the driver's own
			// goroutine herd — not the server — becomes what is measured.
			// Arrivals beyond the pool's intake are shed and reported as
			// dropped_client.
			const submitters = 24
			arrivals := make(chan struct{}, 2*submitters)
			var reqs, waiters sync.WaitGroup
			for w := 0; w < submitters; w++ {
				reqs.Add(1)
				go func() {
					defer reqs.Done()
					for range arrivals {
						oneRequest(c, sc, pool, tp, st, trials, windowEnd, &waiters)
					}
				}()
			}
			// Absolute-clock pacing: arrival k fires at start+k·interval
			// regardless of how long earlier arrivals took to hand off, so
			// both tenants offer exactly the same load (a ticker drops ticks
			// under scheduling jitter and would skew the split).
			n := int(perTenantRate * dur.Seconds())
			start := time.Now()
			for k := 0; k < n; k++ {
				if d := time.Until(start.Add(time.Duration(k) * interval)); d > 0 {
					time.Sleep(d)
				}
				select {
				case arrivals <- struct{}{}:
				default:
					st.lock(func() { st.offered++; st.droppedClient++ })
				}
			}
			close(arrivals)
			reqs.Wait()
			waiters.Wait()
		}(tp, st)
	}
	wg.Wait()

	out := stageJSON{
		Multiplier:  mult,
		OfferedPerS: round2(mult * capacity),
		DurationS:   dur.Seconds(),
		PerTenant:   map[string]tenantJSON{},
	}
	var allLats []time.Duration
	totInWin := 0
	for _, tp := range tenants {
		totInWin += all[tp.id].completedInWin
	}
	for _, tp := range tenants {
		st := all[tp.id]
		tj := tenantJSON{
			Weight: tp.weight, Offered: st.offered, Accepted: st.accepted,
			Rejected429: st.rejected429, Rejected503: st.rejected503,
			Completed: st.completed, CompletedInWin: st.completedInWin,
			DroppedClient: st.droppedClient, LatencyMS: percentiles(st.lats),
		}
		if totInWin > 0 {
			tj.CompletedShare = round3(float64(st.completedInWin) / float64(totInWin))
		}
		out.PerTenant[tp.id] = tj
		out.Offered += st.offered
		out.Accepted += st.accepted
		out.Rejected429 += st.rejected429
		out.Rejected503 += st.rejected503
		out.Errored += st.errored
		out.DroppedClient += st.droppedClient
		out.Completed += st.completed
		allLats = append(allLats, st.lats...)
	}
	if out.Offered > 0 {
		out.RejectionRate = round3(float64(out.Rejected429+out.Rejected503) / float64(out.Offered))
	}
	out.LatencyMS = percentiles(allLats)
	return out
}

// oneRequest submits one job and, if accepted, follows it to a terminal
// state on a separate goroutine (so the submitter pool slot frees
// immediately), recording the submit-to-terminal latency.
func oneRequest(c, sc *http.Client, pool *targetPool, tp tenantPlan, st *stats, trials int, windowEnd time.Time, waiters *sync.WaitGroup) {
	start := time.Now()
	id, status, err := submitJob(c, pool.next(), tp.key, trials)
	st.lock(func() { st.offered++ })
	switch {
	case err != nil:
		st.lock(func() { st.errored++ })
		return
	case status == http.StatusAccepted:
		st.lock(func() { st.accepted++ })
	case status == http.StatusTooManyRequests:
		st.lock(func() { st.rejected429++ })
		return
	case status == http.StatusServiceUnavailable:
		st.lock(func() { st.rejected503++ })
		return
	default:
		st.lock(func() { st.errored++ })
		return
	}
	waiters.Add(1)
	go func() {
		defer waiters.Done()
		if waitTerminal(sc, pool.next(), tp.key, id, 120*time.Second) {
			lat := time.Since(start)
			inWin := time.Now().Before(windowEnd)
			st.lock(func() {
				st.completed++
				if inWin {
					st.completedInWin++
				}
				st.lats = append(st.lats, lat)
			})
		}
	}()
}

func submitJob(c *http.Client, addr, key string, trials int) (id string, status int, err error) {
	req, err := http.NewRequest("POST", "http://"+addr+"/v1/jobs", bytes.NewReader(specBody(trials)))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Authorization", "Bearer "+key)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var v struct {
		ID string `json:"id"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = json.Unmarshal(body, &v)
	return v.ID, resp.StatusCode, nil
}

// waitTerminal follows the job's /events stream until a terminal event
// arrives. One hanging GET per accepted job costs the server a few
// lifecycle writes, where polling at any useful resolution would make
// the driver itself the dominant load on the server under test.
func waitTerminal(sc *http.Client, addr, key, id string, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false
	}
	req.Header.Set("Authorization", "Bearer "+key)
	resp, err := sc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return false
	}
	scn := bufio.NewScanner(resp.Body)
	scn.Buffer(make([]byte, 64<<10), 64<<10)
	for scn.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(scn.Bytes(), &ev) != nil {
			continue
		}
		switch ev.Type {
		case "done", "failed", "cancelled":
			return ev.Type == "done"
		}
	}
	return false
}

func percentiles(lats []time.Duration) latencyJSON {
	if len(lats) == 0 {
		return latencyJSON{}
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return round2(float64(sorted[i]) / float64(time.Millisecond))
	}
	return latencyJSON{P50: at(0.50), P90: at(0.90), P99: at(0.99)}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
func round3(f float64) float64 { return float64(int(f*1000+0.5)) / 1000 }
