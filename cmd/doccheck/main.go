// Command doccheck enforces the repository's documentation contract: every
// package must open with a package doc comment, because the package
// comments are where each package states which section, figure or equation
// of the paper it implements. A package without one is a package whose
// paper mapping has been lost.
//
// Usage:
//
//	doccheck [-exported dir,dir...] [-schema md=pkgdir] [dir ...]
//
// With no arguments it walks the current directory. For every directory
// containing non-test Go files it requires at least one file to carry a
// doc comment on its package clause (the standard `// Package foo ...`
// form; for main packages, a `// Command foo ...` description). Vendored
// code, testdata and hidden directories are skipped. It prints one line
// per violation and exits non-zero if any are found, making it a cheap
// go-vet-style gate for `make ci`.
//
// -exported names package directories (comma-separated) whose exported
// type declarations must each carry their own doc comment — the report
// and campaign schemas are consumed through godoc, so an undocumented
// exported type there is a schema field nobody can interpret.
//
// -schema takes a markdownfile=packagedir pair and cross-checks the two:
// every `json:"..."` tag name on an exported struct in the package must
// appear as a backticked field name in one of the markdown file's table
// rows, and every backticked first-column name in a table row must be a
// real tag — so docs/REPORT_SCHEMA.md can never drift from the Go structs
// that define the wire format.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

func main() {
	exported := flag.String("exported", "", "comma-separated package dirs whose exported types must carry doc comments")
	schema := flag.String("schema", "", "markdownfile=packagedir pair to cross-check field docs against json struct tags")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var bad []string
	for _, root := range roots {
		violations, err := check(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	for _, dir := range splitList(*exported) {
		violations, err := checkExported(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	if *schema != "" {
		md, pkg, ok := strings.Cut(*schema, "=")
		if !ok {
			fmt.Fprintln(os.Stderr, "doccheck: -schema wants markdownfile=packagedir")
			os.Exit(2)
		}
		violations, err := checkSchema(md, pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	sort.Strings(bad)
	for _, v := range bad {
		fmt.Println(v)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", len(bad))
		os.Exit(1)
	}
}

// check walks root and returns one violation line per documented-package
// failure.
func check(root string) ([]string, error) {
	// dir -> package name (any non-test file's) and whether a doc was seen.
	type pkgState struct {
		name   string
		hasDoc bool
	}
	pkgs := map[string]*pkgState{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		// PackageClauseOnly keeps the parse cheap; ParseComments retains
		// the doc comment attached to the clause.
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		st := pkgs[dir]
		if st == nil {
			st = &pkgState{name: f.Name.Name}
			pkgs[dir] = st
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var bad []string
	for dir, st := range pkgs {
		if !st.hasDoc {
			bad = append(bad, fmt.Sprintf("%s: package %s has no package doc comment", dir, st.name))
		}
	}
	return bad, nil
}

// checkExported parses one package directory (non-recursive) and returns
// a violation per exported type declaration without a doc comment. A
// type in a grouped declaration counts as documented if either the spec
// or the (single-spec) declaration carries the comment — the forms godoc
// renders.
func checkExported(dir string) ([]string, error) {
	var bad []string
	err := eachPackageFile(dir, func(path string, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !ts.Name.IsExported() {
					continue
				}
				documented := ts.Doc != nil && strings.TrimSpace(ts.Doc.Text()) != ""
				if !documented && len(gd.Specs) == 1 {
					documented = gd.Doc != nil && strings.TrimSpace(gd.Doc.Text()) != ""
				}
				if !documented {
					bad = append(bad, fmt.Sprintf("%s: exported type %s has no doc comment", path, ts.Name.Name))
				}
			}
		}
	})
	return bad, err
}

// checkSchema cross-checks a markdown schema document against the json
// struct tags of a package's exported structs, in both directions.
func checkSchema(mdPath, pkgDir string) ([]string, error) {
	tags := map[string]bool{}
	err := eachPackageFile(pkgDir, func(_ string, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				for _, field := range st.Fields.List {
					if field.Tag == nil {
						continue
					}
					raw := strings.Trim(field.Tag.Value, "`")
					name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
					if name != "" && name != "-" {
						tags[name] = true
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	text, err := os.ReadFile(mdPath)
	if err != nil {
		return nil, err
	}
	// A documented field is the first backticked token of a markdown table
	// row. Rows whose first cell isn't backticked (headers, separators,
	// prose tables) don't count.
	documented := map[string]bool{}
	for _, line := range strings.Split(string(text), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cell := strings.TrimSpace(strings.SplitN(strings.TrimPrefix(line, "|"), "|", 2)[0])
		if len(cell) > 2 && strings.HasPrefix(cell, "`") && strings.HasSuffix(cell, "`") {
			documented[strings.Trim(cell, "`")] = true
		}
	}

	var bad []string
	for tag := range tags {
		if !documented[tag] {
			bad = append(bad, fmt.Sprintf("%s: field `%s` (a json tag in %s) is not documented", mdPath, tag, pkgDir))
		}
	}
	for name := range documented {
		if !tags[name] {
			bad = append(bad, fmt.Sprintf("%s: documented field `%s` is not a json tag of any exported struct in %s", mdPath, name, pkgDir))
		}
	}
	return bad, nil
}

// eachPackageFile parses every non-test .go file directly in dir (full
// syntax, comments retained) and calls fn on it.
func eachPackageFile(dir string, fn func(path string, f *ast.File)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	seen := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		seen = true
		fn(path, f)
	}
	if !seen {
		return fmt.Errorf("%s: no Go files", dir)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
