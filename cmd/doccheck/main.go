// Command doccheck enforces the repository's documentation contract: every
// package must open with a package doc comment, because the package
// comments are where each package states which section, figure or equation
// of the paper it implements. A package without one is a package whose
// paper mapping has been lost.
//
// Usage:
//
//	doccheck [-exported dir,dir...] [-schema md=pkgdir] [-api md=pkgdir] [dir ...]
//
// With no arguments it walks the current directory. For every directory
// containing non-test Go files it requires at least one file to carry a
// doc comment on its package clause (the standard `// Package foo ...`
// form; for main packages, a `// Command foo ...` description). Vendored
// code, testdata and hidden directories are skipped. It prints one line
// per violation and exits non-zero if any are found, making it a cheap
// go-vet-style gate for `make ci`.
//
// -exported names package directories (comma-separated) whose exported
// type declarations must each carry their own doc comment — the report
// and campaign schemas are consumed through godoc, so an undocumented
// exported type there is a schema field nobody can interpret.
//
// -schema takes a markdownfile=packagedir pair and cross-checks the two:
// every `json:"..."` tag name on an exported struct in the package must
// appear as a backticked field name in one of the markdown file's table
// rows, and every backticked first-column name in a table row must be a
// real tag — so docs/REPORT_SCHEMA.md can never drift from the Go structs
// that define the wire format.
//
// -api takes a markdownfile=packagedir pair and cross-checks the HTTP API
// contract document against the serving package: every route pattern
// registered on the mux (a "METHOD /path" string literal) must have a
// matching `### `METHOD /path“ heading and vice versa, the document's
// "Error codes" table must list exactly the package's ErrCode constant
// values, and its "Error envelope" table must list exactly the ErrorBody
// struct's json tags — so docs/API.md can never drift from the routes,
// taxonomy and envelope the server actually speaks.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	exported := flag.String("exported", "", "comma-separated package dirs whose exported types must carry doc comments")
	schema := flag.String("schema", "", "markdownfile=packagedir pair to cross-check field docs against json struct tags")
	api := flag.String("api", "", "markdownfile=packagedir pair to cross-check an API contract doc against mux routes, error codes and the error envelope")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var bad []string
	for _, root := range roots {
		violations, err := check(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	for _, dir := range splitList(*exported) {
		violations, err := checkExported(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	if *schema != "" {
		md, pkg, ok := strings.Cut(*schema, "=")
		if !ok {
			fmt.Fprintln(os.Stderr, "doccheck: -schema wants markdownfile=packagedir")
			os.Exit(2)
		}
		violations, err := checkSchema(md, pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	if *api != "" {
		md, pkg, ok := strings.Cut(*api, "=")
		if !ok {
			fmt.Fprintln(os.Stderr, "doccheck: -api wants markdownfile=packagedir")
			os.Exit(2)
		}
		violations, err := checkAPI(md, pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	sort.Strings(bad)
	for _, v := range bad {
		fmt.Println(v)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", len(bad))
		os.Exit(1)
	}
}

// check walks root and returns one violation line per documented-package
// failure.
func check(root string) ([]string, error) {
	// dir -> package name (any non-test file's) and whether a doc was seen.
	type pkgState struct {
		name   string
		hasDoc bool
	}
	pkgs := map[string]*pkgState{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		// PackageClauseOnly keeps the parse cheap; ParseComments retains
		// the doc comment attached to the clause.
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		st := pkgs[dir]
		if st == nil {
			st = &pkgState{name: f.Name.Name}
			pkgs[dir] = st
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var bad []string
	for dir, st := range pkgs {
		if !st.hasDoc {
			bad = append(bad, fmt.Sprintf("%s: package %s has no package doc comment", dir, st.name))
		}
	}
	return bad, nil
}

// checkExported parses one package directory (non-recursive) and returns
// a violation per exported type declaration without a doc comment. A
// type in a grouped declaration counts as documented if either the spec
// or the (single-spec) declaration carries the comment — the forms godoc
// renders.
func checkExported(dir string) ([]string, error) {
	var bad []string
	err := eachPackageFile(dir, func(path string, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !ts.Name.IsExported() {
					continue
				}
				documented := ts.Doc != nil && strings.TrimSpace(ts.Doc.Text()) != ""
				if !documented && len(gd.Specs) == 1 {
					documented = gd.Doc != nil && strings.TrimSpace(gd.Doc.Text()) != ""
				}
				if !documented {
					bad = append(bad, fmt.Sprintf("%s: exported type %s has no doc comment", path, ts.Name.Name))
				}
			}
		}
	})
	return bad, err
}

// checkSchema cross-checks a markdown schema document against the json
// struct tags of a package's exported structs, in both directions.
func checkSchema(mdPath, pkgDir string) ([]string, error) {
	tags := map[string]bool{}
	err := eachPackageFile(pkgDir, func(_ string, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				for _, field := range st.Fields.List {
					if field.Tag == nil {
						continue
					}
					raw := strings.Trim(field.Tag.Value, "`")
					name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
					if name != "" && name != "-" {
						tags[name] = true
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	text, err := os.ReadFile(mdPath)
	if err != nil {
		return nil, err
	}
	// A documented field is the first backticked token of a markdown table
	// row. Rows whose first cell isn't backticked (headers, separators,
	// prose tables) don't count.
	documented := map[string]bool{}
	for _, line := range strings.Split(string(text), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cell := strings.TrimSpace(strings.SplitN(strings.TrimPrefix(line, "|"), "|", 2)[0])
		if len(cell) > 2 && strings.HasPrefix(cell, "`") && strings.HasSuffix(cell, "`") {
			documented[strings.Trim(cell, "`")] = true
		}
	}

	var bad []string
	for tag := range tags {
		if !documented[tag] {
			bad = append(bad, fmt.Sprintf("%s: field `%s` (a json tag in %s) is not documented", mdPath, tag, pkgDir))
		}
	}
	for name := range documented {
		if !tags[name] {
			bad = append(bad, fmt.Sprintf("%s: documented field `%s` is not a json tag of any exported struct in %s", mdPath, name, pkgDir))
		}
	}
	return bad, nil
}

// routePattern is the shape of a Go 1.22 ServeMux method-qualified route
// pattern — the same shape both as a string literal in the serving
// package and inside a backticked `### ` heading of the contract doc.
var routePattern = regexp.MustCompile(`^(GET|HEAD|POST|PUT|PATCH|DELETE) /\S*$`)

// checkAPI cross-checks an API contract document against the serving
// package, in both directions:
//
//   - every "METHOD /path" string literal (the mux route patterns) must
//     have a `### `METHOD /path“ heading, and every such heading must
//     name a registered route;
//   - the document section headed "Error codes" must table exactly the
//     string values of the package's ErrCode constants;
//   - the section headed "Error envelope" must table exactly the json
//     tags of the package's ErrorBody struct.
func checkAPI(mdPath, pkgDir string) ([]string, error) {
	routes := map[string]bool{}
	codes := map[string]bool{}
	envelope := map[string]bool{}
	err := eachPackageFile(pkgDir, func(_ string, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if v, err := strconv.Unquote(lit.Value); err == nil && routePattern.MatchString(v) {
				routes[v] = true
			}
			return true
		})
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				// The declared type carries over within a grouped const block
				// until another spec states its own.
				typ := ""
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					if id, isIdent := vs.Type.(*ast.Ident); isIdent {
						typ = id.Name
					} else if vs.Type != nil {
						typ = ""
					}
					if typ != "ErrCode" {
						continue
					}
					for _, v := range vs.Values {
						if lit, isLit := v.(*ast.BasicLit); isLit && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								codes[s] = true
							}
						}
					}
				}
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					st, isStruct := ts.Type.(*ast.StructType)
					if !isStruct || ts.Name.Name != "ErrorBody" {
						continue
					}
					for _, field := range st.Fields.List {
						if field.Tag == nil {
							continue
						}
						raw := strings.Trim(field.Tag.Value, "`")
						name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
						if name != "" && name != "-" {
							envelope[name] = true
						}
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	text, err := os.ReadFile(mdPath)
	if err != nil {
		return nil, err
	}
	// Markdown side: headings open named sections; a backticked heading
	// shaped like a route pattern documents that route; a section's
	// documented names are the backticked first cells of its table rows.
	headings := map[string]bool{}
	sections := map[string]map[string]bool{}
	section := ""
	for _, line := range strings.Split(string(text), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "#") {
			title := strings.TrimSpace(strings.TrimLeft(line, "#"))
			section = title
			if len(title) > 2 && strings.HasPrefix(title, "`") && strings.HasSuffix(title, "`") {
				if inner := strings.Trim(title, "`"); routePattern.MatchString(inner) {
					headings[inner] = true
				}
			}
			continue
		}
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cell := strings.TrimSpace(strings.SplitN(strings.TrimPrefix(line, "|"), "|", 2)[0])
		if len(cell) > 2 && strings.HasPrefix(cell, "`") && strings.HasSuffix(cell, "`") {
			if sections[section] == nil {
				sections[section] = map[string]bool{}
			}
			sections[section][strings.Trim(cell, "`")] = true
		}
	}

	var bad []string
	diff := func(documented, actual map[string]bool, kind, docPlace string) {
		for name := range actual {
			if !documented[name] {
				bad = append(bad, fmt.Sprintf("%s: %s `%s` is not documented (missing from %s)",
					mdPath, kind, name, docPlace))
			}
		}
		for name := range documented {
			if !actual[name] {
				bad = append(bad, fmt.Sprintf("%s: %s documents %s `%s`, which does not exist in %s",
					mdPath, docPlace, kind, name, pkgDir))
			}
		}
	}
	diff(headings, routes, "route", "the `### `METHOD /path`` headings")
	diff(sections["Error codes"], codes, "error code", "the \"Error codes\" table")
	diff(sections["Error envelope"], envelope, "envelope field", "the \"Error envelope\" table")
	return bad, nil
}

// eachPackageFile parses every non-test .go file directly in dir (full
// syntax, comments retained) and calls fn on it.
func eachPackageFile(dir string, fn func(path string, f *ast.File)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	seen := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		seen = true
		fn(path, f)
	}
	if !seen {
		return fmt.Errorf("%s: no Go files", dir)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
