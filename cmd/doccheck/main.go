// Command doccheck enforces the repository's documentation contract: every
// package must open with a package doc comment, because the package
// comments are where each package states which section, figure or equation
// of the paper it implements. A package without one is a package whose
// paper mapping has been lost.
//
// Usage:
//
//	doccheck [dir ...]
//
// With no arguments it walks the current directory. For every directory
// containing non-test Go files it requires at least one file to carry a
// doc comment on its package clause (the standard `// Package foo ...`
// form; for main packages, a `// Command foo ...` description). Vendored
// code, testdata and hidden directories are skipped. It prints one line
// per violation and exits non-zero if any are found, making it a cheap
// go-vet-style gate for `make ci`.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var bad []string
	for _, root := range roots {
		violations, err := check(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, violations...)
	}
	sort.Strings(bad)
	for _, v := range bad {
		fmt.Println(v)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d package(s) missing a package doc comment\n", len(bad))
		os.Exit(1)
	}
}

// check walks root and returns one violation line per documented-package
// failure.
func check(root string) ([]string, error) {
	// dir -> package name (any non-test file's) and whether a doc was seen.
	type pkgState struct {
		name   string
		hasDoc bool
	}
	pkgs := map[string]*pkgState{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		// PackageClauseOnly keeps the parse cheap; ParseComments retains
		// the doc comment attached to the clause.
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		st := pkgs[dir]
		if st == nil {
			st = &pkgState{name: f.Name.Name}
			pkgs[dir] = st
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var bad []string
	for dir, st := range pkgs {
		if !st.hasDoc {
			bad = append(bad, fmt.Sprintf("%s: package %s has no package doc comment", dir, st.name))
		}
	}
	return bad, nil
}
