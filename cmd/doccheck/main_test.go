package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFlagsUndocumentedPackage(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "good.go"),
		"// Package good maps to Section 1.\npackage good\n")
	write(t, filepath.Join(root, "bad", "bad.go"),
		"package bad\n")
	// The doc comment may live in any file of the package.
	write(t, filepath.Join(root, "split", "a.go"), "package split\n")
	write(t, filepath.Join(root, "split", "doc.go"),
		"// Package split is documented elsewhere.\npackage split\n")
	// Test files and testdata don't count either way.
	write(t, filepath.Join(root, "bad", "bad_test.go"),
		"// Package bad has docs only on its tests.\npackage bad\n")
	write(t, filepath.Join(root, "good", "testdata", "ignored.go"),
		"package ignored\n")

	bad, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("got %d violations %v, want 1", len(bad), bad)
	}
	if !strings.Contains(bad[0], "package bad") {
		t.Errorf("violation %q does not name package bad", bad[0])
	}
}

func TestCheckCleanTree(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "p", "p.go"),
		"// Package p implements Eq. 1.\npackage p\n")
	bad, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean tree reported violations: %v", bad)
	}
}
