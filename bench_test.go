package repro

// The benchmark harness regenerates every evaluation artefact of the paper
// (Figures 1-6, Equations 1-4) and the ablation studies listed in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each bench prints its figure's series once per process and reports the
// headline number through b.ReportMetric, so both the shape (printed) and
// the key quantity (metric) land in bench_output.txt.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/aging"
	"repro/internal/calib"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/emc"
	"repro/internal/figures"
	"repro/internal/mathx"
	"repro/internal/sram"
	"repro/internal/variation"
)

var printOnce sync.Map

// printFigure emits a figure's text once per process.
func printFigure(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

func BenchmarkFig1MismatchTrend(b *testing.B) {
	var last *figures.Fig1Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Fig1(5000, 1)
		printFigure("fig1", txt)
		last = res
	}
	b.ReportMetric(last.MaxRelErrAbove10nm*100, "%benchErr>=10nm")
	b.ReportMetric(last.MinRatioBelow10nm, "ratio<10nm")
}

func BenchmarkFig2DegradedIV(b *testing.B) {
	var last *figures.Fig2Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Fig2()
		printFigure("fig2", txt)
		last = res
	}
	b.ReportMetric(last.SatCurrentDropPct, "%Idsat_drop")
}

func BenchmarkFig3CurrentReference(b *testing.B) {
	var last *figures.Fig3Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Fig3()
		printFigure("fig3", txt)
		last = res
	}
	b.ReportMetric(last.IOutQuiet*1e6, "uA_quiet")
}

func BenchmarkFig4EMIShift(b *testing.B) {
	var last *figures.Fig4Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Fig4Default()
		printFigure("fig4", txt)
		last = res
	}
	b.ReportMetric(100*math.Abs(last.WorstShift/last.Sweep.Baseline), "%worst_shift")
}

func BenchmarkFig5DACCalibration(b *testing.B) {
	var last *figures.Fig5Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Fig5(40, 3)
		printFigure("fig5", txt)
		last = res
	}
	b.ReportMetric(100*last.Study.AnalogAreaRatio, "%area_ratio")
}

func BenchmarkFig6KnobsMonitors(b *testing.B) {
	var last *figures.Fig6Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Fig6(30, 10)
		printFigure("fig6", txt)
		last = res
	}
	b.ReportMetric(last.AdaptiveTTF/figures.Year, "yr_adaptiveTTF")
	b.ReportMetric(last.StaticTTF/figures.Year, "yr_staticTTF")
}

func BenchmarkEq1Pelgrom(b *testing.B) {
	var last *figures.Eq1Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Eq1(5000, 5)
		printFigure("eq1", txt)
		last = res
	}
	b.ReportMetric(last.FitSlopeR2, "r2")
}

func BenchmarkEq2HCI(b *testing.B) {
	var last *figures.Eq2Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Eq2()
		printFigure("eq2", txt)
		last = res
	}
	b.ReportMetric(last.FittedExponent, "n")
}

func BenchmarkEq3NBTI(b *testing.B) {
	var last *figures.Eq3Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Eq3()
		printFigure("eq3", txt)
		last = res
	}
	b.ReportMetric(last.FittedExponent, "n")
	b.ReportMetric(last.ACFraction, "AC/DC")
}

func BenchmarkEq4Electromigration(b *testing.B) {
	var last *figures.Eq4Result
	for i := 0; i < b.N; i++ {
		res, txt := figures.Eq4()
		printFigure("eq4", txt)
		last = res
	}
	b.ReportMetric(last.FittedExponent, "J_exp")
}

// BenchmarkImmunityCurve runs the IEC-style immunity search on the Fig. 3
// reference: the lowest EMI amplitude producing a 0.5 µA output shift, per
// frequency. Capacitive gate coupling makes immunity fall with frequency.
func BenchmarkImmunityCurve(b *testing.B) {
	var last *figures.ImmunityResult
	for i := 0; i < b.N; i++ {
		res, txt := figures.Immunity()
		printFigure("immunity", txt)
		last = res
	}
	b.ReportMetric(last.Thresholds[len(last.Thresholds)-1], "V_thresh_100MHz")
}

// BenchmarkScalingStudy regenerates the cross-node summary that condenses
// the paper's thesis: mismatch, NBTI and oxide lifetime all worsen as CMOS
// scales.
func BenchmarkScalingStudy(b *testing.B) {
	var last *figures.ScalingStudyResult
	for i := 0; i < b.N; i++ {
		res, txt := figures.ScalingStudy()
		printFigure("scaling", txt)
		last = res
	}
	first := last.Rows[0]
	final := last.Rows[len(last.Rows)-1]
	b.ReportMetric(final.SigmaVTMinSize/first.SigmaVTMinSize, "x_mismatch_growth")
	b.ReportMetric(final.RelNBTIBudget*100, "%VT_budget_NBTI_32nm")
}

// BenchmarkRingDegradation measures the digital delay degradation the
// paper's §2-3 describe ("slower circuits"): a 65 nm ring oscillator's
// frequency before and after a 10-year 400 K mission.
func BenchmarkRingDegradation(b *testing.B) {
	var last *figures.RingResult
	for i := 0; i < b.N; i++ {
		res, txt := figures.Ring()
		printFigure("ring", txt)
		last = res
	}
	b.ReportMetric(last.SlowdownPct, "%slowdown_10yr")
}

// --------------------------------------------------------------- ablations

// BenchmarkAblationMCSamples measures how the yield-estimate confidence
// interval narrows with Monte-Carlo sample count.
func BenchmarkAblationMCSamples(b *testing.B) {
	tech := device.MustTech("65nm")
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var ciWidth float64
			for i := 0; i < b.N; i++ {
				res, err := variation.MonteCarlo(n, 7, func(rng *mathx.RNG, _ int) (float64, error) {
					return variation.SamplePairDeltaVT(tech, 1e-6, 65e-9, 0, rng), nil
				})
				if err != nil {
					b.Fatal(err)
				}
				y := variation.EstimateYield(res.Values, variation.Spec{Lo: -0.01, Hi: 0.01})
				ciWidth = y.Hi95 - y.Lo95
			}
			b.ReportMetric(ciWidth*100, "%CI_width")
		})
	}
}

// BenchmarkAblationAgingSteps compares log-spaced vs linear aging
// checkpoints against a dense reference. The vehicle is a diode-connected
// PMOS whose gate bias shifts as it degrades, so the stress itself is
// state-dependent and the checkpoint spacing genuinely matters (with
// constant stress the equivalent-time integration is exact for any step).
func BenchmarkAblationAgingSteps(b *testing.B) {
	tech := device.MustTech("65nm")
	build := func() *circuit.Circuit {
		c := circuit.New()
		c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
		c.AddMOSFET("M1", "d", "d", "vdd", "vdd",
			device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300)))
		c.AddResistor("RD", "d", "0", 20e3)
		return c
	}
	const mission = 10 * figures.Year
	run := func(checkpoints []float64) float64 {
		c := build()
		ager := aging.NewCircuitAger(c, aging.Models{NBTI: aging.DefaultNBTI()}, 400, 3)
		traj, err := ager.AgeTo(checkpoints)
		if err != nil {
			b.Fatal(err)
		}
		return traj[len(traj)-1].Solution.Voltage("d")
	}
	ref := run(aging.LogCheckpoints(10, mission, 200))
	for _, mode := range []string{"log8", "lin8"} {
		b.Run(mode, func(b *testing.B) {
			var errV float64
			for i := 0; i < b.N; i++ {
				var cps []float64
				if mode == "log8" {
					cps = aging.LogCheckpoints(10, mission, 8)
				} else {
					cps = aging.LinCheckpoints(mission, 8)
				}
				errV = math.Abs(run(cps) - ref)
			}
			b.ReportMetric(errV*1e3, "mV_err_vs_dense")
		})
	}
}

// BenchmarkAblationSSPA compares switching sequences: thermometer, random
// and SSPA.
func BenchmarkAblationSSPA(b *testing.B) {
	cfg := calib.Paper14Bit(0.01)
	for _, mode := range []string{"thermometer", "random", "sspa"} {
		b.Run(mode, func(b *testing.B) {
			var meanINL float64
			for i := 0; i < b.N; i++ {
				var sum float64
				const n = 10
				for seed := uint64(0); seed < n; seed++ {
					d, err := calib.NewDAC(cfg, mathx.NewRNG(seed))
					if err != nil {
						b.Fatal(err)
					}
					switch mode {
					case "random":
						perm := mathx.NewRNG(seed + 500).Perm(63)
						if err := d.SetSequence(perm); err != nil {
							b.Fatal(err)
						}
					case "sspa":
						d.CalibrateSSPA(0, mathx.NewRNG(seed+500))
					}
					sum += d.MaxINL()
				}
				meanINL = sum / n
			}
			b.ReportMetric(meanINL, "LSB_meanINL")
		})
	}
}

// BenchmarkAblationController compares greedy vs exhaustive knob search on
// a two-knob amplifier.
func BenchmarkAblationController(b *testing.B) {
	tech := device.MustTech("90nm")
	for _, policy := range []adapt.Policy{adapt.Exhaustive, adapt.Greedy} {
		b.Run(policy.String(), func(b *testing.B) {
			var evals int
			var inSpec bool
			for i := 0; i < b.N; i++ {
				c := circuit.New()
				c.AddVSource("VDD", "vdd", "0", circuit.DC(tech.VDD))
				vg := c.AddVSource("VG", "g", "0", circuit.DC(tech.VDD-0.45))
				vg.ACMag = 1
				c.AddResistor("RD", "d", "0", 20e3)
				c.AddMOSFET("M1", "d", "g", "vdd", "vdd",
					device.NewMosfet(tech.PMOSParams(4e-6, 2*tech.Lmin, 300)))
				knob := adapt.VSourceKnob("vbias", vg, mathx.Linspace(tech.VDD-0.44, 0.2, 8))
				dummy := adapt.NewKnob("aux", mathx.Linspace(0, 1, 6), func(float64) {})
				ctrl, err := adapt.NewController(
					[]*adapt.Knob{knob, dummy},
					[]adapt.Monitor{adapt.ACGainMonitor("gain", "d", 1e3)},
					[]variation.Spec{{Lo: 4, Hi: math.Inf(1)}},
					policy)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := ctrl.Tune(c)
				if err != nil {
					b.Fatal(err)
				}
				evals = tr.Evaluations
				inSpec = tr.InSpec
			}
			if !inSpec {
				b.Fatal("controller failed to reach spec")
			}
			b.ReportMetric(float64(evals), "evaluations")
		})
	}
}

// BenchmarkAblationSampling compares plain Monte-Carlo sampling with
// Latin-hypercube stratification on the DAC INL statistic: same batch
// size, lower estimator scatter for LHS.
func BenchmarkAblationSampling(b *testing.B) {
	cfg := calib.Paper14Bit(0.01)
	const nUnary, nBin = 63, 8
	const batch, reps = 20, 12
	batchMean := func(mk func(batchSeed uint64) *calib.DAC, seed uint64) float64 {
		total := 0.0
		for i := 0; i < batch; i++ {
			total += mk(seed*1000 + uint64(i)).MaxINL()
		}
		return total / batch
	}
	run := func(lhs bool) float64 {
		var means mathx.Running
		for r := uint64(0); r < reps; r++ {
			if lhs {
				rows := variation.LHSNormals(batch, nUnary+nBin, 500+r)
				total := 0.0
				for _, row := range rows {
					d, err := calib.NewDACFromErrors(cfg, row[:nUnary], row[nUnary:])
					if err != nil {
						b.Fatal(err)
					}
					total += d.MaxINL()
				}
				means.Add(total / batch)
			} else {
				means.Add(batchMean(func(s uint64) *calib.DAC {
					d, err := calib.NewDAC(cfg, mathx.NewRNG(s))
					if err != nil {
						b.Fatal(err)
					}
					return d
				}, r+1))
			}
		}
		return means.StdDev()
	}
	for _, mode := range []string{"mc", "lhs"} {
		b.Run(mode, func(b *testing.B) {
			var scatter float64
			for i := 0; i < b.N; i++ {
				scatter = run(mode == "lhs")
			}
			b.ReportMetric(scatter*1e3, "mLSB_batch_scatter")
		})
	}
}

// BenchmarkAblationAdaptiveStep compares fixed-step and LTE-controlled
// variable-step transient on an RC edge: equal accuracy budgets, very
// different point counts.
func BenchmarkAblationAdaptiveStep(b *testing.B) {
	build := func() *circuit.Circuit {
		c := circuit.New()
		c.AddVSource("V1", "in", "0", circuit.Pulse{Low: 0, High: 5, Rise: 1e-9, Width: 1, Period: 2})
		c.AddResistor("R1", "in", "out", 1e3)
		c.AddCapacitor("C1", "out", "0", 1e-6)
		return c
	}
	b.Run("fixed", func(b *testing.B) {
		var points int
		for i := 0; i < b.N; i++ {
			wf, err := build().Transient(circuit.TranSpec{
				Stop: 5e-3, Step: 2e-6, Integrator: circuit.Trapezoidal, Record: []string{"out"},
			})
			if err != nil {
				b.Fatal(err)
			}
			points = len(wf.Times)
		}
		b.ReportMetric(float64(points), "points")
	})
	b.Run("adaptive", func(b *testing.B) {
		var points int
		for i := 0; i < b.N; i++ {
			wf, err := build().TransientAdaptive(circuit.AdaptiveSpec{
				Stop: 5e-3, MinStep: 1e-8, MaxStep: 2e-4, LTETol: 2e-3,
				Integrator: circuit.Trapezoidal, Record: []string{"out"},
			})
			if err != nil {
				b.Fatal(err)
			}
			points = len(wf.Times)
		}
		b.ReportMetric(float64(points), "points")
	})
}

// BenchmarkAblationIntegrator compares Backward-Euler vs trapezoidal
// integration accuracy on the EMI rectification testbench, against a
// fine-step trapezoidal reference.
func BenchmarkAblationIntegrator(b *testing.B) {
	tech := device.MustTech("180nm")
	measure := func(intg circuit.Integrator, stepsPerCycle int) float64 {
		cr := emc.BuildCurrentReference(tech, true)
		opts := emc.DefaultOptions(cr.RecordNodes()...)
		opts.Integrator = intg
		opts.StepsPerCycle = stepsPerCycle
		r, err := emc.MeasureRectification(cr.Circuit, cr.InjectName,
			emc.Injection{Ampl: 0.4, Freq: 10e6}, cr.OutputCurrentMetric(), opts)
		if err != nil {
			b.Fatal(err)
		}
		return r.Shift
	}
	ref := measure(circuit.Trapezoidal, 512)
	for _, intg := range []circuit.Integrator{circuit.BackwardEuler, circuit.Trapezoidal} {
		b.Run(intg.String(), func(b *testing.B) {
			var errA float64
			for i := 0; i < b.N; i++ {
				errA = math.Abs(measure(intg, 48) - ref)
			}
			b.ReportMetric(errA*1e9, "nA_err_vs_fine")
		})
	}
}

// BenchmarkSRAMStability measures the 6T read-SNM yield collapse with
// scaling — the cell-level condensation of §2's variability threat.
func BenchmarkSRAMStability(b *testing.B) {
	for _, node := range []string{"90nm", "32nm"} {
		b.Run(node, func(b *testing.B) {
			cfg := sram.DefaultCell(device.MustTech(node))
			var y float64
			for i := 0; i < b.N; i++ {
				est, err := sram.StabilityYield(cfg, 0.1, 100, 31, 11)
				if err != nil {
					b.Fatal(err)
				}
				y = est.Yield
			}
			b.ReportMetric(100*y, "%yield_SNM>100mV")
		})
	}
}
