// Package repro is a from-scratch Go reproduction of "Emerging Yield and
// Reliability Challenges in Nanometer CMOS Technologies" (DATE 2008): a
// circuit-simulation substrate plus variability, aging (NBTI/HCI/TDDB),
// electromigration, EMC and resilience (calibration, knobs & monitors)
// layers. The public surface lives in the internal packages and the
// cmd/ and examples/ binaries; bench_test.go regenerates every figure and
// equation of the paper's evaluation.
package repro
