# Build/test/benchmark entry points. `make ci` is the gate every change
# must pass: vet, the package-doc check, build, the full test suite under
# the race detector, and a one-shot benchmark smoke pass proving the
# harness still runs.

GO ?= go

.PHONY: ci vet doccheck docs build test race race-fault race-serve race-store race-batch race-shard race-campaign race-tenant race-fleet loadgen-smoke bench-smoke bench bench-solver bench-sparse bench-sparse-smoke

ci: vet doccheck docs build race race-fault race-serve race-store race-batch race-shard race-campaign race-tenant race-fleet loadgen-smoke bench-smoke

vet:
	$(GO) vet ./...

# Every package must open with a doc comment mapping it to its paper
# section/equation; see cmd/doccheck.
doccheck:
	$(GO) run ./cmd/doccheck .

# The documentation gates: exported campaign/report types must carry doc
# comments, docs/REPORT_SCHEMA.md must match the report structs' json
# tags in both directions, docs/API.md must match the serve package's
# mux routes, error-code taxonomy and error envelope in both directions,
# and every runnable godoc example must still build and pass.
docs:
	$(GO) run ./cmd/doccheck -exported internal/campaign,internal/report,internal/report/signoff -schema docs/REPORT_SCHEMA.md=internal/report/signoff -api docs/API.md=internal/serve .
	$(GO) test -run 'Example' ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-isolation and cancellation paths under the race detector with a
# higher iteration count: panicking trials, mid-run cancellation and
# partial-result accounting in variation, core and aging.
race-fault:
	$(GO) test -race -count=2 -run 'Panic|Cancel|Fault|Deadline|Telemetry' ./internal/variation/ ./internal/core/ ./internal/aging/

# The job-server lifecycle under the race detector: submit/poll/stream,
# exact queue backpressure, mid-job cancellation with partial-result
# accounting, and the graceful drain.
race-serve:
	$(GO) test -race -count=2 ./internal/serve/ ./internal/jobspec/

# Durability under the race detector: journal replay and compaction,
# crash-recovery classification (done/queued/interrupted), the spec-
# keyed result cache across restarts, and the retention policy that
# bounds memory and disk.
race-store:
	$(GO) test -race -count=2 -run 'Store|Crash|Recover|Cache|Retention|Evict|RetryAfter|Interrupted|Seed|Hash' ./internal/store/ ./internal/serve/ ./internal/jobspec/

# The batched trial-evaluation paths under the race detector: circuit
# reuse across core chunks, the jobspec deck pool, and the bit-identity
# pins that prove reuse never changes a result.
race-batch:
	$(GO) test -race -count=2 -run 'Batch|Quantile|Sparse' ./internal/core/ ./internal/jobspec/ ./internal/variation/ ./internal/device/ ./internal/circuit/

# The sharded-campaign and checkpoint/resume paths under the race
# detector: mergeable moments and sketches, shard-seed independence,
# trial-range scatter-gather (local and peer-dispatched), checkpoint
# journaling with compaction/eviction guarantees, and the kill-and-
# resume acceptance suite.
race-shard:
	$(GO) test -race -count=1 -run 'Moments|Sketch|SplitMix|Correl|Chunk|Campaign|Shard|Resume|Checkpoint|QuantileCache' ./internal/mathx/ ./internal/variation/ ./internal/jobspec/ ./internal/store/ ./internal/serve/

# The composite-campaign paths under the race detector: the generic DAG
# engine's concurrency, sub-job failure propagating a structured partial
# report, mid-campaign kill + restart resuming from journaled sub-job
# checkpoints, and cache-hit sub-jobs surfacing in report provenance.
race-campaign:
	$(GO) test -race -count=2 ./internal/campaign/
	$(GO) test -race -count=1 -run 'Campaign|Signoff|Centering|Corner|DAG' ./internal/jobspec/ ./internal/serve/ ./internal/variation/ ./internal/report/...

# The multi-tenant API paths under the race detector: key auth, tenant
# quota and trial-rate 429s with tenant-derived Retry-After, weighted
# fair-share convergence, batch dedup/cache admission atomicity, list
# pagination, readiness, journaled fair-share accounting across restart,
# priority classes and the /events fan-out (1k subscribers, slow-reader
# disconnect, bounded batching).
race-tenant:
	$(GO) test -race -count=1 -run 'TestTenant|TestFairShare|TestTrialRate|TestBatch|TestList|TestReadyz|TestRestartFairShare|TestInteractive|TestEvent' ./internal/serve/

# The fleet-federation paths under the race detector: tenant-
# authenticated and timed-out shard dispatch (auth vs unreachable
# fallback accounting, hung-peer goroutine hygiene), cross-node job
# forwarding with the hop guard, probe-driven quarantine and recovery,
# fleet-wide max_running, and the two-node kill-and-failover acceptance
# run proving an adopted campaign resumes from the dead node's journal
# bit-identical to an uninterrupted one.
race-fleet:
	$(GO) test -race -count=1 -run 'TestFleet|TestShardDispatch|TestShardedCampaignPeerDispatch|TestShardPeerFallbackLocal' ./internal/serve/

# Harness-rot check for cmd/loadgen: one short open-loop stage against
# an in-process server, asserting the BENCH_9 driver still runs end to
# end (the full run behind BENCH_9.json uses the defaults).
loadgen-smoke:
	$(GO) run ./cmd/loadgen -self -stages 2 -stage-duration 3s -trials 5000 -out /dev/null

# One iteration of every benchmark: catches harness rot without the cost
# of a full measurement run.
bench-smoke: bench-sparse-smoke
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Full measurement run of every benchmark with allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The solver hot-path microbenchmarks behind BENCH_1.json / the README
# "Performance" section.
bench-solver:
	$(GO) test -run '^$$' -bench 'BenchmarkOperatingPoint$$|BenchmarkOperatingPointCold$$|BenchmarkTransientStep$$' -benchmem -benchtime=2s .
	$(GO) test -run '^$$' -bench 'FactorSolve' -benchmem ./internal/linalg/

# The sparse-backend crossover and batched-campaign benchmarks behind
# BENCH_6.json / the README crossover table.
bench-sparse:
	$(GO) test -run '^$$' -bench 'BenchmarkLadderOP|BenchmarkMCCampaign|BenchmarkMCService' -benchtime=2s .
	$(GO) test -run '^$$' -bench 'BenchmarkEval' -benchmem -benchtime=2s ./internal/device/

# Harness-rot check for the same set: one iteration each.
bench-sparse-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLadderOP|BenchmarkMCCampaign|BenchmarkMCService' -benchtime=1x .
